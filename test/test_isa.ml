(* Tests for Dvz_isa: registers, instruction classification, encoding and
   decoding, the assembler, ALU semantics and the golden model. *)

open Dvz_isa
module Rng = Dvz_util.Rng

(* --- registers ----------------------------------------------------------- *)

let test_reg_range () =
  Alcotest.(check int) "x0" 0 (Reg.to_int Reg.zero);
  Alcotest.(check int) "ra" 1 (Reg.to_int Reg.ra);
  Alcotest.check_raises "x32 rejected" (Invalid_argument "Reg.x: out of range")
    (fun () -> ignore (Reg.x 32))

let test_reg_names () =
  Alcotest.(check string) "ra name" "ra" (Reg.name Reg.ra);
  Alcotest.(check string) "x29 name" "x29" (Reg.name (Reg.x 29))

(* --- classification ------------------------------------------------------ *)

let test_insn_classify () =
  let ret = Insn.Jalr (Reg.zero, Reg.ra, 0) in
  let call = Insn.Jalr (Reg.ra, Reg.t0, 0) in
  let jump = Insn.Jalr (Reg.zero, Reg.t0, 0) in
  Alcotest.(check bool) "ret is return" true (Insn.is_return ret);
  Alcotest.(check bool) "call is call" true (Insn.is_call call);
  Alcotest.(check bool) "call not return" false (Insn.is_return call);
  Alcotest.(check bool) "jump indirect" true (Insn.is_indirect jump);
  Alcotest.(check bool) "jal is call" true (Insn.is_call (Insn.Jal (Reg.ra, 8)));
  Alcotest.(check bool) "branch is control" true
    (Insn.is_control (Insn.Branch (Insn.Eq, Reg.t0, Reg.t1, 8)))

let test_insn_reads_writes () =
  let load = Insn.Load (Insn.D, false, Reg.a0, Reg.t0, 8) in
  Alcotest.(check bool) "load writes a0" true (Insn.writes load = Some Reg.a0);
  Alcotest.(check int) "load reads t0" 1 (List.length (Insn.reads load));
  let store = Insn.Store (Insn.W, Reg.a1, Reg.t0, 0) in
  Alcotest.(check bool) "store writes nothing" true (Insn.writes store = None);
  Alcotest.(check int) "store reads 2" 2 (List.length (Insn.reads store));
  let zero_dst = Insn.Opi (Insn.Addi, Reg.zero, Reg.t0, 1) in
  Alcotest.(check bool) "x0 destination elided" true (Insn.writes zero_dst = None)

let test_insn_may_fault () =
  Alcotest.(check bool) "load may fault" true
    (Insn.may_fault (Insn.Load (Insn.D, false, Reg.a0, Reg.t0, 0)));
  Alcotest.(check bool) "add may not" false
    (Insn.may_fault (Insn.Op (Insn.Add, Reg.a0, Reg.t0, Reg.t1)))

(* --- encode/decode ------------------------------------------------------- *)

let insn_testable =
  Alcotest.testable
    (fun fmt i -> Format.pp_print_string fmt (Insn.to_string i))
    ( = )

let roundtrip i = Decode.decode (Encode.encode i)

let test_encode_known_values () =
  (* addi x0,x0,0 is the canonical nop 0x00000013 *)
  Alcotest.(check int) "nop" 0x00000013 (Encode.encode Insn.nop);
  Alcotest.(check int) "ecall" 0x00000073 (Encode.encode Insn.Ecall);
  Alcotest.(check int) "ebreak" 0x00100073 (Encode.encode Insn.Ebreak);
  Alcotest.(check int) "mret" 0x30200073 (Encode.encode Insn.Mret);
  (* add x3,x1,x2 = 0x002081b3 *)
  Alcotest.(check int) "add" 0x002081B3
    (Encode.encode (Insn.Op (Insn.Add, Reg.x 3, Reg.x 1, Reg.x 2)));
  (* ld a0, 16(sp) = 0x01013503 *)
  Alcotest.(check int) "ld" 0x01013503
    (Encode.encode (Insn.Load (Insn.D, false, Reg.a0, Reg.sp, 16)))

let test_roundtrip_samples () =
  let samples =
    [ Insn.Lui (Reg.a0, 0x12345);
      Insn.Auipc (Reg.t0, 0xFFFFF);
      Insn.Op (Insn.Sub, Reg.a0, Reg.a1, Reg.a2);
      Insn.Op (Insn.Mul, Reg.t0, Reg.t1, Reg.t2);
      Insn.Opi (Insn.Addi, Reg.s0, Reg.s1, -2048);
      Insn.Opi (Insn.Srai, Reg.s0, Reg.s1, 63);
      Insn.Opi (Insn.Slli, Reg.s0, Reg.s1, 40);
      Insn.Load (Insn.B, true, Reg.a0, Reg.t0, 2047);
      Insn.Load (Insn.W, false, Reg.a0, Reg.t0, -1);
      Insn.Store (Insn.H, Reg.a1, Reg.sp, -32);
      Insn.Branch (Insn.Geu, Reg.t0, Reg.t1, -4096);
      Insn.Jal (Reg.ra, 1048574);
      Insn.Jalr (Reg.zero, Reg.ra, 0);
      Insn.Fdiv (Reg.a0, Reg.a1, Reg.a2);
      Insn.Csr (Insn.Csrrw, Reg.a0, Insn.Mscratch, Reg.a1);
      Insn.Csr (Insn.Csrrs, Reg.a0, Insn.Mepc, Reg.zero);
      Insn.Csr (Insn.Csrrc, Reg.zero, Insn.Mcause, Reg.t0);
      Insn.Fence_i; Insn.Ecall; Insn.Ebreak; Insn.Mret ]
  in
  List.iter
    (fun i -> Alcotest.check insn_testable (Insn.to_string i) i (roundtrip i))
    samples

let test_encode_rejects_bad_imm () =
  Alcotest.check_raises "imm13" (Invalid_argument "Encode: bad imm12")
    (fun () -> ignore (Encode.encode (Insn.Opi (Insn.Addi, Reg.a0, Reg.a0, 4096))))

let test_decode_illegal () =
  match Decode.decode 0xFFFFFFFF with
  | Insn.Illegal _ -> ()
  | i -> Alcotest.failf "expected illegal, got %s" (Insn.to_string i)

let random_insn rng =
  let r n = Reg.x (Rng.int rng n) in
  match Rng.int rng 10 with
  | 0 -> Insn.Lui (r 32, Rng.int rng (1 lsl 20))
  | 1 ->
      let ops = [| Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Sll;
                   Insn.Srl; Insn.Sra; Insn.Slt; Insn.Sltu; Insn.Mul; Insn.Div |] in
      Insn.Op (Rng.choose rng ops, r 32, r 32, r 32)
  | 2 ->
      let ops = [| Insn.Addi; Insn.Andi; Insn.Ori; Insn.Xori; Insn.Slti; Insn.Sltiu |] in
      Insn.Opi (Rng.choose rng ops, r 32, r 32, Rng.int_in rng (-2048) 2047)
  | 3 ->
      let w = Rng.choose rng [| Insn.B; Insn.H; Insn.W; Insn.D |] in
      let u = w <> Insn.D && Rng.bool rng in
      Insn.Load (w, u, r 32, r 32, Rng.int_in rng (-2048) 2047)
  | 4 ->
      let w = Rng.choose rng [| Insn.B; Insn.H; Insn.W; Insn.D |] in
      Insn.Store (w, r 32, r 32, Rng.int_in rng (-2048) 2047)
  | 5 ->
      let c = Rng.choose rng [| Insn.Eq; Insn.Ne; Insn.Lt; Insn.Ge; Insn.Ltu; Insn.Geu |] in
      Insn.Branch (c, r 32, r 32, 2 * Rng.int_in rng (-2048) 2047)
  | 6 -> Insn.Jal (r 32, 2 * Rng.int_in rng (-524288) 524287)
  | 7 -> Insn.Jalr (r 32, r 32, Rng.int_in rng (-2048) 2047)
  | 8 -> Insn.Fdiv (r 32, r 32, r 32)
  | _ -> Insn.Opi (Rng.choose rng [| Insn.Slli; Insn.Srli; Insn.Srai |], r 32, r 32, Rng.int rng 64)

let prop_roundtrip =
  QCheck.Test.make ~name:"decode(encode i) = i" ~count:2000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let i = random_insn rng in
      roundtrip i = i)

(* --- assembler ----------------------------------------------------------- *)

let test_asm_forward_label () =
  let prog =
    [ Asm.Branch_to (Insn.Eq, Reg.t0, Reg.t1, "skip");
      Asm.I Insn.nop;
      Asm.L "skip";
      Asm.I Insn.Ebreak ]
  in
  let words, labels = Asm.assemble ~base:0x1000 prog in
  Alcotest.(check int) "3 words" 3 (Array.length words);
  Alcotest.(check int) "label addr" 0x1008 (Asm.label_addr labels "skip");
  (match Decode.decode words.(0) with
  | Insn.Branch (Insn.Eq, _, _, off) -> Alcotest.(check int) "offset" 8 off
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i))

let test_asm_backward_jal () =
  let prog =
    [ Asm.L "loop"; Asm.I Insn.nop; Asm.Jal_to (Reg.zero, "loop") ]
  in
  let words, _ = Asm.assemble ~base:0 prog in
  match Decode.decode words.(1) with
  | Insn.Jal (_, off) -> Alcotest.(check int) "backward" (-4) off
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i)

let test_asm_la () =
  let prog = [ Asm.La (Reg.a0, "data"); Asm.I Insn.Ebreak; Asm.L "data" ] in
  let words, labels = Asm.assemble ~base:0x2000 prog in
  Alcotest.(check int) "3 words" 3 (Array.length words);
  Alcotest.(check int) "data label" 0x200C (Asm.label_addr labels "data");
  (* execute the auipc/addi pair on the golden model to check the value *)
  let mem = Dvz_soc.Phys_mem.create () in
  Dvz_soc.Phys_mem.write_words mem 0x2000 words;
  let g = Golden.create ~pc:0x2000 (Dvz_soc.Phys_mem.golden_memory mem) in
  ignore (Golden.step g);
  ignore (Golden.step g);
  Alcotest.(check int) "a0 holds label address" 0x200C (Golden.reg g Reg.a0)

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate" (Failure "Asm: duplicate label x")
    (fun () -> ignore (Asm.assemble ~base:0 [ Asm.L "x"; Asm.L "x" ]))

let test_asm_undefined_label () =
  Alcotest.check_raises "undefined" (Failure "Asm: undefined label nowhere")
    (fun () ->
      ignore (Asm.assemble ~base:0 [ Asm.Jal_to (Reg.zero, "nowhere") ]))

let test_asm_size () =
  let prog = [ Asm.I Insn.nop; Asm.L "l"; Asm.La (Reg.a0, "l"); Asm.Raw 0 ] in
  Alcotest.(check int) "size" 16 (Asm.size_bytes prog)

(* --- assembler text parser ------------------------------------------------ *)

let test_parser_program () =
  let src = {|
start:
    addi  t0, zero, 5
    la    a0, data
    ld    t1, 8(a0)       # a load with a memory operand
    beq   t0, t1, done
    jal   ra, start
    fence.i
    .word 0xdeadbeef
done:
    ebreak
data:
|} in
  let prog = Asm_parser.parse_exn src in
  let words, labels = Asm.assemble ~base:0x1000 prog in
  Alcotest.(check int) "nine words (la is two)" 9 (Array.length words);
  Alcotest.(check bool) "labels resolved" true
    (Asm.label_addr labels "done" > Asm.label_addr labels "start");
  Alcotest.(check int) "raw word" 0xdeadbeef words.(7)

let test_parser_pseudo_ops () =
  let prog = Asm_parser.parse_exn "nop
ret
li t0, -7
j 8" in
  Alcotest.(check int) "four items" 4 (List.length prog);
  (match prog with
  | [ Asm.I a; Asm.I b; Asm.I c; Asm.I d ] ->
      Alcotest.(check bool) "nop" true (a = Insn.nop);
      Alcotest.(check bool) "ret" true (Insn.is_return b);
      Alcotest.(check bool) "li" true
        (c = Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, -7));
      Alcotest.(check bool) "j" true (d = Insn.Jal (Reg.zero, 8))
  | _ -> Alcotest.fail "unexpected program shape")

let test_parser_registers () =
  let prog = Asm_parser.parse_exn "add x31, s11, a7" in
  match prog with
  | [ Asm.I (Insn.Op (Insn.Add, rd, rs1, rs2)) ] ->
      Alcotest.(check int) "x31" 31 (Reg.to_int rd);
      Alcotest.(check int) "s11" 27 (Reg.to_int rs1);
      Alcotest.(check int) "a7" 17 (Reg.to_int rs2)
  | _ -> Alcotest.fail "parse failed"

let test_parser_errors () =
  (match Asm_parser.parse "frobnicate t0" with
  | Error m ->
      Alcotest.(check bool) "mentions line" true
        (String.length m > 0 && String.sub m 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected error");
  match Asm_parser.parse "addi t0, zero" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity error expected"

let prop_parser_roundtrips_disassembly =
  QCheck.Test.make ~name:"parse (to_string i) = i" ~count:1000
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let i = random_insn rng in
      match Asm_parser.parse (Insn.to_string i) with
      | Ok [ Asm.I j ] -> j = i
      | Ok [ Asm.Raw w ] -> (match i with Insn.Illegal _ -> w = Encode.encode i | _ -> false)
      | _ -> false)

(* --- ALU semantics ------------------------------------------------------- *)

let test_alu_basics () =
  Alcotest.(check int) "add" 7 (Exec_alu.alu Insn.Add 3 4);
  Alcotest.(check int) "sub" (-1) (Exec_alu.alu Insn.Sub 3 4);
  Alcotest.(check int) "sll uses low 6 bits" 6 (Exec_alu.alu Insn.Sll 3 65);
  Alcotest.(check int) "sra sign" (-2) (Exec_alu.alu Insn.Sra (-4) 1);
  Alcotest.(check int) "slt" 1 (Exec_alu.alu Insn.Slt (-1) 0);
  Alcotest.(check int) "sltu unsigned" 0 (Exec_alu.alu Insn.Sltu (-1) 0);
  Alcotest.(check int) "div by zero" (-1) (Exec_alu.alu Insn.Div 5 0)

let test_cond_holds () =
  Alcotest.(check bool) "ltu treats -1 as big" false
    (Exec_alu.cond_holds Insn.Ltu (-1) 1);
  Alcotest.(check bool) "geu" true (Exec_alu.cond_holds Insn.Geu (-1) 1);
  Alcotest.(check bool) "ge signed" false (Exec_alu.cond_holds Insn.Ge (-1) 1)

let test_sign_extend () =
  Alcotest.(check int) "byte" (-1) (Exec_alu.sign_extend 8 0xFF);
  Alcotest.(check int) "positive" 0x7F (Exec_alu.sign_extend 8 0x7F)

(* --- golden model -------------------------------------------------------- *)

let fresh_golden ?(pc = 0x1000) words =
  let mem = Dvz_soc.Phys_mem.create () in
  Dvz_soc.Phys_mem.write_words mem pc (Array.of_list (List.map Encode.encode words));
  (Golden.create ~pc (Dvz_soc.Phys_mem.golden_memory mem), mem)

let test_golden_csr () =
  (* machine mode: csrrw swaps, csrrs reads, user mode traps *)
  let g, _ =
    fresh_golden
      [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 0x55);
        Insn.Csr (Insn.Csrrw, Reg.t1, Insn.Mscratch, Reg.t0);
        Insn.Csr (Insn.Csrrs, Reg.t2, Insn.Mscratch, Reg.zero) ]
  in
  ignore (Golden.step g);
  ignore (Golden.step g);
  Alcotest.(check int) "old value read" 0 (Golden.reg g Reg.t1);
  ignore (Golden.step g);
  Alcotest.(check int) "written value read back" 0x55 (Golden.reg g Reg.t2)

let test_golden_csr_user_traps () =
  let mem = Dvz_soc.Phys_mem.create () in
  Dvz_soc.Phys_mem.write_words mem 0x1000
    [| Encode.encode (Insn.Csr (Insn.Csrrs, Reg.t0, Insn.Mcause, Reg.zero)) |];
  let g =
    Golden.create ~pc:0x1000 ~priv:Golden.User
      (Dvz_soc.Phys_mem.golden_memory mem)
  in
  let s = Golden.step g in
  Alcotest.(check bool) "user csr access is illegal" true
    (s.Golden.s_trap = Some Trap.Illegal_instruction)

let test_parser_csr () =
  match Asm_parser.parse_exn "csrrs t0, mepc, zero" with
  | [ Asm.I (Insn.Csr (Insn.Csrrs, rd, Insn.Mepc, rs)) ] ->
      Alcotest.(check int) "rd" 5 (Reg.to_int rd);
      Alcotest.(check int) "rs" 0 (Reg.to_int rs)
  | _ -> Alcotest.fail "csr parse failed"

let test_golden_arith_sequence () =
  let g, _ =
    fresh_golden
      [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 21);
        Insn.Op (Insn.Add, Reg.t1, Reg.t0, Reg.t0);
        Insn.Op (Insn.Mul, Reg.t2, Reg.t1, Reg.t0) ]
  in
  ignore (Golden.step g);
  ignore (Golden.step g);
  ignore (Golden.step g);
  Alcotest.(check int) "t1 = 42" 42 (Golden.reg g Reg.t1);
  Alcotest.(check int) "t2 = 882" 882 (Golden.reg g Reg.t2)

let test_golden_x0_immutable () =
  let g, _ = fresh_golden [ Insn.Opi (Insn.Addi, Reg.zero, Reg.zero, 5) ] in
  ignore (Golden.step g);
  Alcotest.(check int) "x0 stays 0" 0 (Golden.reg g Reg.zero)

let test_golden_load_sign_extension () =
  let g, mem =
    fresh_golden
      [ Insn.Lui (Reg.t0, 2);  (* t0 = 0x2000 *)
        Insn.Load (Insn.B, false, Reg.t1, Reg.t0, 0);
        Insn.Load (Insn.B, true, Reg.t2, Reg.t0, 0) ]
  in
  Dvz_soc.Phys_mem.write_byte mem 0x2000 0x80;
  ignore (Golden.step g);
  ignore (Golden.step g);
  ignore (Golden.step g);
  Alcotest.(check int) "lb sign extends" (-128) (Golden.reg g Reg.t1);
  Alcotest.(check int) "lbu zero extends" 128 (Golden.reg g Reg.t2)

let test_golden_store_load () =
  let g, mem =
    fresh_golden
      [ Insn.Lui (Reg.t0, 2);  (* t0 = 0x2000 *)
        Insn.Opi (Insn.Addi, Reg.t1, Reg.zero, 0x123);
        Insn.Store (Insn.D, Reg.t1, Reg.t0, 8);
        Insn.Load (Insn.D, false, Reg.t2, Reg.t0, 8) ]
  in
  for _ = 1 to 4 do ignore (Golden.step g) done;
  Alcotest.(check int) "memory value" 0x123
    (Dvz_soc.Phys_mem.read mem ~addr:0x2008 ~size:8);
  Alcotest.(check int) "loaded back" 0x123 (Golden.reg g Reg.t2)

let test_golden_branch () =
  let g, _ =
    fresh_golden
      [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1);
        Insn.Branch (Insn.Ne, Reg.t0, Reg.zero, 8);
        Insn.Opi (Insn.Addi, Reg.t1, Reg.zero, 99);  (* skipped *)
        Insn.Opi (Insn.Addi, Reg.t2, Reg.zero, 7) ]
  in
  ignore (Golden.step g);
  let s = Golden.step g in
  Alcotest.(check bool) "taken" true (s.Golden.s_taken = Some true);
  ignore (Golden.step g);
  Alcotest.(check int) "skipped insn" 0 (Golden.reg g Reg.t1);
  Alcotest.(check int) "target executed" 7 (Golden.reg g Reg.t2)

let test_golden_jal_jalr () =
  let g, _ =
    fresh_golden
      [ Insn.Jal (Reg.ra, 8);                (* 0x1000 -> 0x1008, ra=0x1004 *)
        Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1);
        Insn.Jalr (Reg.zero, Reg.ra, 0) ]    (* 0x1008: return to 0x1004 *)
  in
  let s1 = Golden.step g in
  Alcotest.(check bool) "jal target" true (s1.Golden.s_target = Some 0x1008);
  Alcotest.(check int) "link" 0x1004 (Golden.reg g Reg.ra);
  let s2 = Golden.step g in
  Alcotest.(check bool) "ret to 0x1004" true (s2.Golden.s_target = Some 0x1004);
  ignore (Golden.step g);
  Alcotest.(check int) "t0 executed after return" 1 (Golden.reg g Reg.t0)

let test_golden_misalign_trap () =
  let g, _ =
    fresh_golden
      [ Insn.Lui (Reg.t0, 2);  (* t0 = 0x2000 *)
        Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 1) ]
  in
  ignore (Golden.step g);
  let s = Golden.step g in
  Alcotest.(check bool) "misalign trap" true
    (s.Golden.s_trap = Some Trap.Load_misalign);
  Alcotest.(check int) "vectored to mtvec" 0 (Golden.pc g);
  Alcotest.(check int) "mcause" (Trap.code Trap.Load_misalign) (Golden.mcause g);
  Alcotest.(check int) "mepc" 0x1004 (Golden.mepc g)

let test_golden_privilege () =
  (* a user-mode access to a machine-only page faults *)
  let mem = Dvz_soc.Phys_mem.create () in
  let words =
    Array.of_list
      (List.map Encode.encode
         [ Insn.Lui (Reg.t0, 3);  (* t0 = 0x3000 *)
           Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0) ])
  in
  Dvz_soc.Phys_mem.write_words mem 0x1000 words;
  Dvz_soc.Phys_mem.set_perm mem 0x3000 (Dvz_soc.Perm.priv_only Dvz_soc.Perm.rw);
  let g =
    Golden.create ~pc:0x1000 ~priv:Golden.User
      (Dvz_soc.Phys_mem.golden_memory mem)
  in
  ignore (Golden.step g);
  let s = Golden.step g in
  Alcotest.(check bool) "access fault" true
    (s.Golden.s_trap = Some Trap.Load_access_fault);
  Alcotest.(check bool) "now machine mode" true (Golden.priv g = Golden.Machine)

let test_golden_illegal () =
  let mem = Dvz_soc.Phys_mem.create () in
  Dvz_soc.Phys_mem.write_words mem 0x1000 [| 0xFFFFFFFF |];
  let g = Golden.create ~pc:0x1000 (Dvz_soc.Phys_mem.golden_memory mem) in
  let s = Golden.step g in
  Alcotest.(check bool) "illegal trap" true
    (s.Golden.s_trap = Some Trap.Illegal_instruction)

let test_golden_run_stop () =
  let g, _ =
    fresh_golden
      [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1);
        Insn.Opi (Insn.Addi, Reg.t0, Reg.t0, 1);
        Insn.Ebreak ]
  in
  let trace = Golden.run g ~stop:(fun g -> Golden.mcause g <> 0) () in
  Alcotest.(check int) "three steps" 3 (List.length trace);
  Alcotest.(check int) "t0" 2 (Golden.reg g Reg.t0)

let test_golden_copy_isolated () =
  let g, _ = fresh_golden [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 5) ] in
  let snap = Golden.copy g in
  ignore (Golden.step g);
  Alcotest.(check int) "original advanced" 5 (Golden.reg g Reg.t0);
  Alcotest.(check int) "copy unchanged" 0 (Golden.reg snap Reg.t0)

let prop_golden_deterministic =
  QCheck.Test.make ~name:"golden model is deterministic" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let insns = List.init 20 (fun _ -> random_insn rng) in
      let run () =
        let mem = Dvz_soc.Phys_mem.create () in
        Dvz_soc.Phys_mem.write_words mem 0x1000
          (Array.of_list (List.map Encode.encode insns));
        let g = Golden.create ~pc:0x1000 (Dvz_soc.Phys_mem.golden_memory mem) in
        let trace =
          Golden.run g ~fuel:50 ~stop:(fun g -> Golden.mcause g <> 0) ()
        in
        List.map (fun s -> (s.Golden.s_pc, s.Golden.s_next_pc)) trace
      in
      run () = run ())

let () =
  Alcotest.run "dvz_isa"
    [ ( "reg",
        [ Alcotest.test_case "range" `Quick test_reg_range;
          Alcotest.test_case "names" `Quick test_reg_names ] );
      ( "insn",
        [ Alcotest.test_case "classification" `Quick test_insn_classify;
          Alcotest.test_case "reads/writes" `Quick test_insn_reads_writes;
          Alcotest.test_case "may_fault" `Quick test_insn_may_fault ] );
      ( "encode/decode",
        [ Alcotest.test_case "known encodings" `Quick test_encode_known_values;
          Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
          Alcotest.test_case "imm range check" `Quick test_encode_rejects_bad_imm;
          Alcotest.test_case "illegal word" `Quick test_decode_illegal;
          QCheck_alcotest.to_alcotest prop_roundtrip ] );
      ( "asm",
        [ Alcotest.test_case "forward label" `Quick test_asm_forward_label;
          Alcotest.test_case "backward jal" `Quick test_asm_backward_jal;
          Alcotest.test_case "la" `Quick test_asm_la;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "size" `Quick test_asm_size ] );
      ( "asm_parser",
        [ Alcotest.test_case "program" `Quick test_parser_program;
          Alcotest.test_case "pseudo ops" `Quick test_parser_pseudo_ops;
          Alcotest.test_case "registers" `Quick test_parser_registers;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          QCheck_alcotest.to_alcotest prop_parser_roundtrips_disassembly ] );
      ( "alu",
        [ Alcotest.test_case "basics" `Quick test_alu_basics;
          Alcotest.test_case "conditions" `Quick test_cond_holds;
          Alcotest.test_case "sign extension" `Quick test_sign_extend ] );
      ( "golden",
        [ Alcotest.test_case "arithmetic" `Quick test_golden_arith_sequence;
          Alcotest.test_case "x0 immutable" `Quick test_golden_x0_immutable;
          Alcotest.test_case "load sign extension" `Quick
            test_golden_load_sign_extension;
          Alcotest.test_case "store/load" `Quick test_golden_store_load;
          Alcotest.test_case "branch" `Quick test_golden_branch;
          Alcotest.test_case "jal/jalr" `Quick test_golden_jal_jalr;
          Alcotest.test_case "misalign trap" `Quick test_golden_misalign_trap;
          Alcotest.test_case "privilege" `Quick test_golden_privilege;
          Alcotest.test_case "illegal" `Quick test_golden_illegal;
          Alcotest.test_case "run/stop" `Quick test_golden_run_stop;
          Alcotest.test_case "copy isolation" `Quick test_golden_copy_isolated;
          Alcotest.test_case "csr semantics" `Quick test_golden_csr;
          Alcotest.test_case "csr privilege" `Quick test_golden_csr_user_traps;
          Alcotest.test_case "csr parsing" `Quick test_parser_csr;
          QCheck_alcotest.to_alcotest prop_golden_deterministic ] ) ]
