(* Tests for Dvz_baselines: the SpecDoctor re-implementation and the
   ablation option sets. *)

module Rng = Dvz_util.Rng
module Cfg = Dvz_uarch.Config
module Seed = Dejavuzz.Seed
module Sd = Dvz_baselines.Specdoctor
module Variants = Dvz_baselines.Variants
module Campaign = Dejavuzz.Campaign

let boom = Cfg.boom_small

let test_supported_kinds () =
  Alcotest.(check int) "four window types" 4 (Array.length Sd.supported);
  Alcotest.(check bool) "no return support" false
    (Array.exists (( = ) Seed.T_return) Sd.supported)

let test_unsupported_rejected () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "return unsupported"
    (Invalid_argument "Specdoctor.generate_of_kind: unsupported window type")
    (fun () -> ignore (Sd.generate_of_kind rng boom Seed.T_return))

let test_kinds_trigger_on_boom () =
  let rng = Rng.create 2 in
  Array.iter
    (fun kind ->
      let hits = ref 0 in
      for _ = 1 to 10 do
        let c = Sd.generate_of_kind rng boom kind in
        if Sd.triggered boom c then incr hits
      done;
      Alcotest.(check bool)
        (Seed.kind_name kind ^ " mostly triggers")
        true (!hits >= 8))
    Sd.supported

let test_training_overhead_magnitude () =
  (* SpecDoctor pays ~a hundred instructions of training for every window
     type, including the exception types that need none (Table 3). *)
  let rng = Rng.create 3 in
  let c = Sd.generate_of_kind rng boom Seed.T_page_fault in
  Alcotest.(check bool) "around a hundred instructions" true
    (c.Sd.sc_training_insns > 80 && c.Sd.sc_training_insns < 200)

let test_hash_oracle_flags_secret () =
  let rng = Rng.create 4 in
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0x1357 in
  (* with high probability a triggering page-fault case warms/samples the
     secret into hashed state; search a few *)
  let rec search tries =
    if tries = 0 then Alcotest.fail "no hash-differing case found"
    else begin
      let c = Sd.generate_of_kind rng boom Seed.T_page_fault in
      if Sd.triggered boom c && Sd.hash_differs boom ~secret c then ()
      else search (tries - 1)
    end
  in
  search 20

let test_campaign_smoke () =
  let st = Sd.campaign ~rng_seed:5 ~iterations:25 boom in
  Alcotest.(check int) "iterations recorded" 25 st.Sd.sd_iterations;
  Alcotest.(check bool) "coverage measured" true (st.Sd.sd_coverage_curve.(24) > 0);
  Alcotest.(check bool) "some candidates" true (st.Sd.sd_candidates <> [])

let test_campaign_deterministic () =
  let a = Sd.campaign ~rng_seed:6 ~iterations:10 boom in
  let b = Sd.campaign ~rng_seed:6 ~iterations:10 boom in
  Alcotest.(check bool) "same curve" true
    (a.Sd.sd_coverage_curve = b.Sd.sd_coverage_curve);
  Alcotest.(check int) "same candidates"
    (List.length a.Sd.sd_candidates)
    (List.length b.Sd.sd_candidates)

let test_variant_options () =
  let star = Variants.star_options ~iterations:10 ~rng_seed:1 in
  Alcotest.(check bool) "star uses random training" true
    (star.Campaign.style = `Random);
  Alcotest.(check bool) "star keeps coverage" true star.Campaign.coverage_guided;
  let minus = Variants.minus_options ~iterations:10 ~rng_seed:1 in
  Alcotest.(check bool) "minus drops coverage" false
    minus.Campaign.coverage_guided;
  Alcotest.(check bool) "minus keeps derivation" true
    (minus.Campaign.style = `Derived);
  let full = Variants.full_options ~iterations:10 ~rng_seed:1 in
  Alcotest.(check int) "iterations plumbed" 10 full.Campaign.iterations

let () =
  Alcotest.run "dvz_baselines"
    [ ( "specdoctor",
        [ Alcotest.test_case "supported kinds" `Quick test_supported_kinds;
          Alcotest.test_case "unsupported rejected" `Quick
            test_unsupported_rejected;
          Alcotest.test_case "kinds trigger" `Quick test_kinds_trigger_on_boom;
          Alcotest.test_case "training magnitude" `Quick
            test_training_overhead_magnitude;
          Alcotest.test_case "hash oracle" `Quick test_hash_oracle_flags_secret;
          Alcotest.test_case "campaign smoke" `Quick test_campaign_smoke;
          Alcotest.test_case "campaign deterministic" `Quick
            test_campaign_deterministic ] );
      ( "variants",
        [ Alcotest.test_case "option sets" `Quick test_variant_options ] ) ]
