(* Cross-cutting tests for the smaller public surfaces: effect/element
   naming, trace line content, table-five rendering, VCD multi-signal
   dumps, migration listings, and the bug-check inventory. *)

module Elem = Dvz_uarch.Elem
module Eff = Dvz_uarch.Effect
module Cfg = Dvz_uarch.Config
module E = Dvz_experiments

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- elements -------------------------------------------------------------- *)

let test_elem_modules_stable () =
  (* every constructor maps into the declared module universe *)
  let samples =
    [ Elem.Areg 3; Elem.Sreg 3; Elem.Mem 7; Elem.Dcache 5; Elem.Icache 5;
      Elem.Lfb 1; Elem.Btb 0; Elem.Bht 0; Elem.Ras 2; Elem.Loop 1;
      Elem.Tlb 3; Elem.L2tlb 3; Elem.Rob 9; Elem.Ldq 0; Elem.Stq 0; Elem.Pc ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Elem.to_string e ^ " in module universe")
        true
        (List.mem (Elem.module_of e) Elem.all_modules))
    samples

let test_elem_banking () =
  Alcotest.(check string) "bank 0" "lsu.dcache.bank0" (Elem.module_of (Elem.Dcache 4));
  Alcotest.(check string) "bank 3" "lsu.dcache.bank3" (Elem.module_of (Elem.Dcache 7));
  Alcotest.(check bool) "banks differ" true
    (Elem.module_of (Elem.Dcache 0) <> Elem.module_of (Elem.Dcache 1))

let test_elem_equality () =
  Alcotest.(check bool) "equal" true (Elem.equal (Elem.Ras 2) (Elem.Ras 2));
  Alcotest.(check bool) "index distinguishes" false
    (Elem.equal (Elem.Ras 2) (Elem.Ras 3));
  Alcotest.(check bool) "constructor distinguishes" false
    (Elem.equal (Elem.Tlb 2) (Elem.L2tlb 2))

(* --- effects ---------------------------------------------------------------- *)

let test_effect_names () =
  Alcotest.(check string) "branch" "branch" (Eff.ctrl_kind_name Eff.C_branch);
  Alcotest.(check string) "squash" "squash" (Eff.ctrl_kind_name Eff.C_squash);
  Alcotest.(check bool) "window kinds distinct" true
    (Eff.window_kind_name Eff.W_branch_mispred
    <> Eff.window_kind_name Eff.W_jump_mispred);
  Alcotest.(check bool) "exception carries cause" true
    (contains
       (Eff.window_kind_name (Eff.W_exception Dvz_isa.Trap.Load_misalign))
       "misalign")

(* --- trace ------------------------------------------------------------------ *)

let test_trace_slot_content () =
  let slot =
    { Eff.sl_pc = 0x1234; sl_insn = Dvz_isa.Insn.Ebreak; sl_transient = true;
      sl_window_opened = Some Eff.W_mem_disamb; sl_window_closed = true;
      sl_events = []; sl_cycles = 42; sl_committed = false; sl_swapped = false }
  in
  let line = Dvz_uarch.Trace.slot_line slot in
  Alcotest.(check bool) "pc" true (contains line "0x1234");
  Alcotest.(check bool) "disassembly" true (contains line "ebreak");
  Alcotest.(check bool) "window annotation" true (contains line "mem-disamb");
  Alcotest.(check bool) "squash annotation" true (contains line "<squash>");
  Alcotest.(check bool) "transient marker" true (contains line " T ")

(* --- rendering -------------------------------------------------------------- *)

let test_table5_render_content () =
  let finding =
    { Dejavuzz.Campaign.fd_attack = `Meltdown;
      fd_window = Dejavuzz.Seed.T_page_fault;
      fd_components = [ "dcache" ]; fd_kind = `Encode; fd_iteration = 7;
      fd_source = None }
  in
  let t = Dejavuzz.Report.table5 ~core_name:"X" [ finding ] in
  Alcotest.(check bool) "attack row" true (contains t "Meltdown");
  Alcotest.(check bool) "window group" true (contains t "mem-excp");
  Alcotest.(check bool) "component" true (contains t "dcache");
  let line = Dejavuzz.Report.finding_to_string finding in
  Alcotest.(check bool) "iteration" true (contains line "7")

let test_bugcheck_inventory () =
  Alcotest.(check int) "five bugs" 5 (List.length E.Bugcheck.all);
  List.iter
    (fun b ->
      Alcotest.(check bool) "has CVE" true
        (contains (E.Bugcheck.cve b) "CVE-2024");
      let cfg = E.Bugcheck.vulnerable_core b in
      Alcotest.(check bool) "core named" true (String.length cfg.Cfg.name > 0))
    E.Bugcheck.all

let test_migrate_assembly_listing () =
  let rng = Dvz_util.Rng.create 3 in
  let seed = Dejavuzz.Seed.random_of_kind rng Dejavuzz.Seed.T_page_fault in
  let tc = Dejavuzz.Trigger_gen.generate Cfg.boom_small seed in
  let layout = Dejavuzz.Migrate.migrate tc in
  let asm = Dejavuzz.Migrate.render_assembly layout in
  Alcotest.(check bool) "entry comment" true (contains asm "# entry:");
  Alcotest.(check bool) "transient base listed" true (contains asm "transient")

(* --- VCD -------------------------------------------------------------------- *)

let test_vcd_multiple_scopes () =
  let open Dvz_ir in
  let nl = Netlist.create () in
  let a =
    Netlist.scoped nl "alpha" (fun () -> Netlist.input nl ~name:"a" 1)
  in
  let b =
    Netlist.scoped nl "beta" (fun () ->
        let q = Netlist.reg nl ~name:"b" 4 in
        Netlist.reg_connect nl q ~d:(Netlist.const nl 4 9) ();
        q)
  in
  ignore a;
  ignore b;
  let vcd =
    Vcd.dump_simulation nl ~cycles:3 ~drive:(fun sim _ ->
        Sim.set_input sim a 1)
  in
  Alcotest.(check bool) "alpha scope" true (contains vcd "$scope module alpha");
  Alcotest.(check bool) "beta scope" true (contains vcd "$scope module beta");
  Alcotest.(check bool) "register value dumped" true (contains vcd "b1001")

(* --- seed/report misc -------------------------------------------------------- *)

let test_seed_to_string () =
  let rng = Dvz_util.Rng.create 1 in
  let s = Dejavuzz.Seed.random rng in
  Alcotest.(check bool) "mentions kind" true
    (contains (Dejavuzz.Seed.to_string s) (Dejavuzz.Seed.kind_name s.Dejavuzz.Seed.kind))

let test_config_presets_disjoint_bugs () =
  let b = Cfg.boom_small and x = Cfg.xiangshan_minimal in
  Alcotest.(check bool) "B2 only on BOOM" true
    (b.Cfg.ras_restore_below_tos_bug && not x.Cfg.ras_restore_below_tos_bug);
  Alcotest.(check bool) "B3 only on BOOM" true
    (b.Cfg.btb_exception_race_bug && not x.Cfg.btb_exception_race_bug);
  Alcotest.(check bool) "B1 only on XiangShan" true
    (x.Cfg.addr_truncate_bug && not b.Cfg.addr_truncate_bug);
  Alcotest.(check bool) "B5 only on XiangShan" true
    (x.Cfg.load_wb_contention_bug && not b.Cfg.load_wb_contention_bug);
  Alcotest.(check bool) "annotation effort matches Table 2" true
    (Cfg.annotation_loc b = 212 && Cfg.annotation_loc x = 592)

let () =
  Alcotest.run "dvz_misc"
    [ ( "elem",
        [ Alcotest.test_case "module universe" `Quick test_elem_modules_stable;
          Alcotest.test_case "banking" `Quick test_elem_banking;
          Alcotest.test_case "equality" `Quick test_elem_equality ] );
      ( "effect", [ Alcotest.test_case "names" `Quick test_effect_names ] );
      ( "trace", [ Alcotest.test_case "slot line" `Quick test_trace_slot_content ] );
      ( "render",
        [ Alcotest.test_case "table5" `Quick test_table5_render_content;
          Alcotest.test_case "bugcheck inventory" `Quick test_bugcheck_inventory;
          Alcotest.test_case "migrate listing" `Quick test_migrate_assembly_listing ] );
      ( "vcd", [ Alcotest.test_case "scopes" `Quick test_vcd_multiple_scopes ] );
      ( "misc",
        [ Alcotest.test_case "seed printing" `Quick test_seed_to_string;
          Alcotest.test_case "preset bug disjointness" `Quick
            test_config_presets_disjoint_bugs ] ) ]
