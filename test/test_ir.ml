(* Tests for Dvz_ir: bit utilities, netlist construction, cycle simulation,
   demo circuits, and memory flattening. *)

open Dvz_ir
module N = Netlist

let test_bits_mask () =
  Alcotest.(check int) "mask 1" 1 (Bits.mask 1);
  Alcotest.(check int) "mask 8" 255 (Bits.mask 8);
  Alcotest.check_raises "mask 0" (Invalid_argument "Bits.mask: bad width")
    (fun () -> ignore (Bits.mask 0))

let test_bits_trunc () =
  Alcotest.(check int) "trunc" 0x34 (Bits.trunc 8 0x1234);
  Alcotest.(check int) "trunc negative" 0xFF (Bits.trunc 8 (-1))

let test_bits_bit () =
  Alcotest.(check int) "bit 0" 1 (Bits.bit 0b101 0);
  Alcotest.(check int) "bit 1" 0 (Bits.bit 0b101 1)

let test_bits_replicate () =
  Alcotest.(check int) "rep 1" 0xF (Bits.replicate 4 1);
  Alcotest.(check int) "rep 0" 0 (Bits.replicate 4 0)

let test_bits_popcount () =
  Alcotest.(check int) "popcount" 3 (Bits.popcount 0b1011);
  Alcotest.(check int) "zero" 0 (Bits.popcount 0)

let test_bits_spread_up () =
  Alcotest.(check int) "spread from bit1" 0b11111110 (Bits.spread_up 8 0b10);
  Alcotest.(check int) "zero" 0 (Bits.spread_up 8 0)

(* A tiny combinational circuit: out = (a & b) | ~c. *)
let test_sim_comb () =
  let nl = N.create () in
  let a = N.input nl 4 and b = N.input nl 4 and c = N.input nl 4 in
  let out = N.or_ nl (N.and_ nl a b) (N.not_ nl c) in
  let sim = Sim.create nl in
  Sim.set_input sim a 0b1100;
  Sim.set_input sim b 0b1010;
  Sim.set_input sim c 0b0110;
  Sim.eval sim;
  Alcotest.(check int) "and-or-not" (0b1000 lor 0b1001) (Sim.peek sim out)

let test_sim_arith () =
  let nl = N.create () in
  let a = N.input nl 8 and b = N.input nl 8 in
  let sum = N.add nl a b in
  let diff = N.sub nl a b in
  let eq = N.eq nl a b in
  let lt = N.lt nl a b in
  let sim = Sim.create nl in
  Sim.set_input sim a 200;
  Sim.set_input sim b 100;
  Sim.eval sim;
  Alcotest.(check int) "add wraps" ((200 + 100) land 255) (Sim.peek sim sum);
  Alcotest.(check int) "sub" 100 (Sim.peek sim diff);
  Alcotest.(check int) "eq" 0 (Sim.peek sim eq);
  Alcotest.(check int) "lt" 0 (Sim.peek sim lt)

let test_sim_mux_select () =
  let nl = N.create () in
  let s = N.input nl 1 and a = N.input nl 8 and b = N.input nl 8 in
  let m = N.mux nl s a b in
  let sim = Sim.create nl in
  Sim.set_input sim a 11;
  Sim.set_input sim b 22;
  Sim.set_input sim s 0;
  Sim.eval sim;
  Alcotest.(check int) "s=0 selects a" 11 (Sim.peek sim m);
  Sim.set_input sim s 1;
  Sim.eval sim;
  Alcotest.(check int) "s=1 selects b" 22 (Sim.peek sim m)

let test_sim_slice_concat () =
  let nl = N.create () in
  let a = N.input nl 8 in
  let hi = N.slice nl a ~lo:4 ~width:4 in
  let lo = N.slice nl a ~lo:0 ~width:4 in
  let swapped = N.concat nl lo hi in
  let sim = Sim.create nl in
  Sim.set_input sim a 0xA5;
  Sim.eval sim;
  Alcotest.(check int) "nibble swap" 0x5A (Sim.peek sim swapped)

let test_sim_register_latch () =
  let c = Circuits.counter ~width:8 in
  let sim = Sim.create c.Circuits.cnt_nl in
  Sim.set_input sim c.Circuits.cnt_en 1;
  for _ = 1 to 5 do Sim.cycle sim done;
  Alcotest.(check int) "counted to 5" 5 (Sim.peek sim c.Circuits.cnt_q);
  Sim.set_input sim c.Circuits.cnt_en 0;
  for _ = 1 to 3 do Sim.cycle sim done;
  Alcotest.(check int) "enable gates" 5 (Sim.peek sim c.Circuits.cnt_q)

let test_sim_memory () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:16 () in
  let wen = N.input nl 1 and waddr = N.input nl 4 and wdata = N.input nl 8 in
  let raddr = N.input nl 4 in
  N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
  let rdata = N.mem_read nl m raddr in
  let sim = Sim.create nl in
  Sim.set_input sim wen 1;
  Sim.set_input sim waddr 3;
  Sim.set_input sim wdata 0x7E;
  Sim.cycle sim;
  Sim.set_input sim wen 0;
  Sim.set_input sim raddr 3;
  Sim.eval sim;
  Alcotest.(check int) "write then read" 0x7E (Sim.peek sim rdata);
  Alcotest.(check int) "backdoor read" 0x7E (Sim.peek_mem sim m 3)

let test_unconnected_register_rejected () =
  let nl = N.create () in
  let _q = N.reg nl 4 in
  Alcotest.check_raises "unconnected"
    (Failure "Sim.create: unconnected register ") (fun () ->
      ignore (Sim.create nl))

let test_width_mismatch_rejected () =
  let nl = N.create () in
  let a = N.input nl 4 and b = N.input nl 8 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Netlist: operand widths differ") (fun () ->
      ignore (N.and_ nl a b))

let test_modules_and_scoping () =
  let nl = N.create () in
  N.scoped nl "top" (fun () ->
      ignore (N.input nl 1);
      N.scoped nl "sub" (fun () -> ignore (N.input nl 1)));
  let mods = N.modules nl in
  Alcotest.(check bool) "top present" true (List.mem "top" mods);
  Alcotest.(check bool) "nested tag" true (List.mem "top.sub" mods)

let test_rob_circuit_update () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  let sim = Sim.create rob.Circuits.rob_nl in
  let push op =
    Sim.set_input sim rob.Circuits.enq_valid 1;
    Sim.set_input sim rob.Circuits.enq_uopc op;
    Sim.set_input sim rob.Circuits.rollback 0;
    Sim.cycle sim
  in
  (* tail starts at 0: first enqueue writes entry 0 and bumps the tail *)
  push 0x11;
  push 0x22;
  Sim.eval sim;
  Alcotest.(check int) "entry0" 0x11 (Sim.peek sim rob.Circuits.uopc.(0));
  Alcotest.(check int) "entry1" 0x22 (Sim.peek sim rob.Circuits.uopc.(1));
  Alcotest.(check int) "tail at 2" 2 (Sim.peek sim rob.Circuits.tail)

let test_rob_rollback () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  let sim = Sim.create rob.Circuits.rob_nl in
  Sim.set_input sim rob.Circuits.enq_valid 1;
  Sim.set_input sim rob.Circuits.enq_uopc 0x1;
  Sim.set_input sim rob.Circuits.rollback 0;
  Sim.cycle sim;
  Sim.cycle sim;
  Sim.set_input sim rob.Circuits.enq_valid 0;
  Sim.set_input sim rob.Circuits.rollback 1;
  Sim.set_input sim rob.Circuits.rollback_idx 0;
  Sim.cycle sim;
  Sim.eval sim;
  Alcotest.(check int) "tail restored" 0 (Sim.peek sim rob.Circuits.tail)

let test_lfb_circuit () =
  let lfb = Circuits.lfb ~entries:4 ~data_width:8 in
  let sim = Sim.create lfb.Circuits.lfb_nl in
  Sim.set_input sim lfb.Circuits.fill_valid 1;
  Sim.set_input sim lfb.Circuits.fill_idx 1;
  Sim.set_input sim lfb.Circuits.fill_data 0x99;
  Sim.set_input sim lfb.Circuits.retire 0;
  Sim.cycle sim;
  Sim.eval sim;
  Alcotest.(check int) "data filled" 0x99 (Sim.peek sim lfb.Circuits.data.(1));
  Alcotest.(check int) "valid set" 1 (Sim.peek sim lfb.Circuits.valid.(1));
  Sim.set_input sim lfb.Circuits.fill_valid 0;
  Sim.set_input sim lfb.Circuits.retire 1;
  Sim.set_input sim lfb.Circuits.retire_idx 1;
  Sim.cycle sim;
  Sim.eval sim;
  Alcotest.(check int) "valid cleared" 0 (Sim.peek sim lfb.Circuits.valid.(1));
  Alcotest.(check int) "stale data remains" 0x99 (Sim.peek sim lfb.Circuits.data.(1))

(* Flattening: the flattened netlist must be cycle-for-cycle equivalent. *)
let test_flatten_equivalent () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  let wen = N.input nl 1 and waddr = N.input nl 3 and wdata = N.input nl 8 in
  let raddr = N.input nl 3 in
  N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
  let rdata = N.mem_read nl m raddr in
  let flat, tr = Flatten.flatten_with_map nl in
  let sim = Sim.create nl and fsim = Sim.create flat in
  let rng = Dvz_util.Rng.create 77 in
  for _ = 1 to 200 do
    let we = Dvz_util.Rng.int rng 2 in
    let wa = Dvz_util.Rng.int rng 8 in
    let wd = Dvz_util.Rng.int rng 256 in
    let ra = Dvz_util.Rng.int rng 8 in
    Sim.set_input sim wen we;
    Sim.set_input sim waddr wa;
    Sim.set_input sim wdata wd;
    Sim.set_input sim raddr ra;
    Sim.set_input fsim (tr wen) we;
    Sim.set_input fsim (tr waddr) wa;
    Sim.set_input fsim (tr wdata) wd;
    Sim.set_input fsim (tr raddr) ra;
    Sim.eval sim;
    Sim.eval fsim;
    Alcotest.(check int) "read ports agree" (Sim.peek sim rdata)
      (Sim.peek fsim (tr rdata));
    Sim.step sim;
    Sim.step fsim
  done

let test_flatten_grows_cells () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:64 () in
  let wen = N.input nl 1 and waddr = N.input nl 6 and wdata = N.input nl 8 in
  N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
  ignore (N.mem_read nl m waddr);
  let flat = Flatten.flatten nl in
  Alcotest.(check bool) "flattening inflates the cell count" true
    (Flatten.cell_count flat > 4 * Flatten.cell_count nl)

(* Random straight-line circuit programs for property testing. *)
let random_netlist seed =
  let rng = Dvz_util.Rng.create seed in
  let nl = N.create () in
  let inputs = Array.init 3 (fun _ -> N.input nl 8) in
  let pool = ref (Array.to_list inputs) in
  let pick () = Dvz_util.Rng.choose_list rng !pool in
  for _ = 1 to 20 do
    let a = pick () and b = pick () in
    let s =
      match Dvz_util.Rng.int rng 6 with
      | 0 -> N.and_ nl a b
      | 1 -> N.or_ nl a b
      | 2 -> N.xor_ nl a b
      | 3 -> N.add nl a b
      | 4 -> N.sub nl a b
      | _ -> N.not_ nl a
    in
    pool := s :: !pool
  done;
  (nl, inputs, List.hd !pool)

let prop_flatten_identity_no_mem =
  QCheck.Test.make ~name:"flatten is identity-equivalent without memories"
    ~count:30 QCheck.small_int (fun seed ->
      let nl, inputs, out = random_netlist seed in
      let flat, tr = Flatten.flatten_with_map nl in
      let sim = Sim.create nl and fsim = Sim.create flat in
      let rng = Dvz_util.Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 20 do
        Array.iter
          (fun i ->
            let v = Dvz_util.Rng.int rng 256 in
            Sim.set_input sim i v;
            Sim.set_input fsim (tr i) v)
          inputs;
        Sim.eval sim;
        Sim.eval fsim;
        if Sim.peek sim out <> Sim.peek fsim (tr out) then ok := false
      done;
      !ok)

let prop_xor_self_zero =
  QCheck.Test.make ~name:"x xor x evaluates to 0" ~count:100 QCheck.small_int
    (fun v ->
      let nl = N.create () in
      let a = N.input nl 8 in
      let z = N.xor_ nl a a in
      let sim = Sim.create nl in
      Sim.set_input sim a v;
      Sim.eval sim;
      Sim.peek sim z = 0)

(* --- VCD ------------------------------------------------------------------ *)

let test_vcd_header_and_changes () =
  let c = Circuits.counter ~width:4 in
  let vcd =
    Vcd.dump_simulation c.Circuits.cnt_nl ~cycles:5 ~drive:(fun sim _ ->
        Sim.set_input sim c.Circuits.cnt_en 1)
  in
  let contains sub =
    let n = String.length sub and m = String.length vcd in
    let rec go i = i + n <= m && (String.sub vcd i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions");
  Alcotest.(check bool) "declares q" true (contains " q ");
  Alcotest.(check bool) "scope from module tag" true
    (contains "$scope module counter");
  Alcotest.(check bool) "binary values" true (contains "b0011");
  Alcotest.(check bool) "timestamps" true (contains "#4")

let test_vcd_only_changes_dumped () =
  let c = Circuits.counter ~width:4 in
  let vcd =
    Vcd.dump_simulation c.Circuits.cnt_nl ~cycles:6 ~drive:(fun sim _ ->
        Sim.set_input sim c.Circuits.cnt_en 0)
  in
  (* with the counter disabled, q never changes after time 0: at most the
     initial dump plus the final timestamp *)
  let q_lines =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = 'b')
      (String.split_on_char '\n' vcd)
  in
  Alcotest.(check int) "single value record for q" 1 (List.length q_lines)

let () =
  Alcotest.run "dvz_ir"
    [ ( "bits",
        [ Alcotest.test_case "mask" `Quick test_bits_mask;
          Alcotest.test_case "trunc" `Quick test_bits_trunc;
          Alcotest.test_case "bit" `Quick test_bits_bit;
          Alcotest.test_case "replicate" `Quick test_bits_replicate;
          Alcotest.test_case "popcount" `Quick test_bits_popcount;
          Alcotest.test_case "spread_up" `Quick test_bits_spread_up ] );
      ( "sim",
        [ Alcotest.test_case "combinational" `Quick test_sim_comb;
          Alcotest.test_case "arithmetic" `Quick test_sim_arith;
          Alcotest.test_case "mux" `Quick test_sim_mux_select;
          Alcotest.test_case "slice/concat" `Quick test_sim_slice_concat;
          Alcotest.test_case "register latch" `Quick test_sim_register_latch;
          Alcotest.test_case "memory" `Quick test_sim_memory;
          Alcotest.test_case "unconnected register" `Quick
            test_unconnected_register_rejected;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch_rejected;
          Alcotest.test_case "module scoping" `Quick test_modules_and_scoping;
          QCheck_alcotest.to_alcotest prop_xor_self_zero ] );
      ( "circuits",
        [ Alcotest.test_case "rob update" `Quick test_rob_circuit_update;
          Alcotest.test_case "rob rollback" `Quick test_rob_rollback;
          Alcotest.test_case "lfb decoy" `Quick test_lfb_circuit ] );
      ( "vcd",
        [ Alcotest.test_case "header and changes" `Quick test_vcd_header_and_changes;
          Alcotest.test_case "change-only dumping" `Quick
            test_vcd_only_changes_dumped ] );
      ( "flatten",
        [ Alcotest.test_case "memory equivalence" `Quick test_flatten_equivalent;
          Alcotest.test_case "cell inflation" `Quick test_flatten_grows_cells;
          QCheck_alcotest.to_alcotest prop_flatten_identity_no_mem ] ) ]
