(* Tests for Dvz_ir: bit utilities, netlist construction, cycle simulation,
   demo circuits, and memory flattening. *)

open Dvz_ir
module N = Netlist

let test_bits_mask () =
  Alcotest.(check int) "mask 1" 1 (Bits.mask 1);
  Alcotest.(check int) "mask 8" 255 (Bits.mask 8);
  Alcotest.check_raises "mask 0" (Invalid_argument "Bits.mask: bad width")
    (fun () -> ignore (Bits.mask 0))

let test_bits_trunc () =
  Alcotest.(check int) "trunc" 0x34 (Bits.trunc 8 0x1234);
  Alcotest.(check int) "trunc negative" 0xFF (Bits.trunc 8 (-1))

let test_bits_bit () =
  Alcotest.(check int) "bit 0" 1 (Bits.bit 0b101 0);
  Alcotest.(check int) "bit 1" 0 (Bits.bit 0b101 1)

let test_bits_replicate () =
  Alcotest.(check int) "rep 1" 0xF (Bits.replicate 4 1);
  Alcotest.(check int) "rep 0" 0 (Bits.replicate 4 0)

let test_bits_popcount () =
  Alcotest.(check int) "popcount" 3 (Bits.popcount 0b1011);
  Alcotest.(check int) "zero" 0 (Bits.popcount 0);
  Alcotest.(check int) "max_width ones" 62 (Bits.popcount (Bits.mask 62));
  (* Negative ints: all 63 two's-complement bits count. *)
  Alcotest.(check int) "minus one" 63 (Bits.popcount (-1));
  Alcotest.(check int) "min_int" 1 (Bits.popcount min_int)

(* Bit-at-a-time reference for the SWAR implementation. *)
let naive_popcount v =
  let c = ref 0 in
  for i = 0 to 62 do
    c := !c + ((v lsr i) land 1)
  done;
  !c

let prop_popcount_matches_naive =
  QCheck.Test.make ~name:"SWAR popcount equals bit-at-a-time reference"
    ~count:500 QCheck.int (fun v -> Bits.popcount v = naive_popcount v)

let test_bits_spread_up () =
  Alcotest.(check int) "spread from bit1" 0b11111110 (Bits.spread_up 8 0b10);
  Alcotest.(check int) "zero" 0 (Bits.spread_up 8 0)

(* A tiny combinational circuit: out = (a & b) | ~c. *)
let test_sim_comb () =
  let nl = N.create () in
  let a = N.input nl 4 and b = N.input nl 4 and c = N.input nl 4 in
  let out = N.or_ nl (N.and_ nl a b) (N.not_ nl c) in
  let sim = Sim.create nl in
  Sim.set_input sim a 0b1100;
  Sim.set_input sim b 0b1010;
  Sim.set_input sim c 0b0110;
  Sim.eval sim;
  Alcotest.(check int) "and-or-not" (0b1000 lor 0b1001) (Sim.peek sim out)

let test_sim_arith () =
  let nl = N.create () in
  let a = N.input nl 8 and b = N.input nl 8 in
  let sum = N.add nl a b in
  let diff = N.sub nl a b in
  let eq = N.eq nl a b in
  let lt = N.lt nl a b in
  let sim = Sim.create nl in
  Sim.set_input sim a 200;
  Sim.set_input sim b 100;
  Sim.eval sim;
  Alcotest.(check int) "add wraps" ((200 + 100) land 255) (Sim.peek sim sum);
  Alcotest.(check int) "sub" 100 (Sim.peek sim diff);
  Alcotest.(check int) "eq" 0 (Sim.peek sim eq);
  Alcotest.(check int) "lt" 0 (Sim.peek sim lt)

let test_sim_mux_select () =
  let nl = N.create () in
  let s = N.input nl 1 and a = N.input nl 8 and b = N.input nl 8 in
  let m = N.mux nl s a b in
  let sim = Sim.create nl in
  Sim.set_input sim a 11;
  Sim.set_input sim b 22;
  Sim.set_input sim s 0;
  Sim.eval sim;
  Alcotest.(check int) "s=0 selects a" 11 (Sim.peek sim m);
  Sim.set_input sim s 1;
  Sim.eval sim;
  Alcotest.(check int) "s=1 selects b" 22 (Sim.peek sim m)

let test_sim_slice_concat () =
  let nl = N.create () in
  let a = N.input nl 8 in
  let hi = N.slice nl a ~lo:4 ~width:4 in
  let lo = N.slice nl a ~lo:0 ~width:4 in
  let swapped = N.concat nl lo hi in
  let sim = Sim.create nl in
  Sim.set_input sim a 0xA5;
  Sim.eval sim;
  Alcotest.(check int) "nibble swap" 0x5A (Sim.peek sim swapped)

let test_sim_register_latch () =
  let c = Circuits.counter ~width:8 in
  let sim = Sim.create c.Circuits.cnt_nl in
  Sim.set_input sim c.Circuits.cnt_en 1;
  for _ = 1 to 5 do Sim.cycle sim done;
  Alcotest.(check int) "counted to 5" 5 (Sim.peek sim c.Circuits.cnt_q);
  Sim.set_input sim c.Circuits.cnt_en 0;
  for _ = 1 to 3 do Sim.cycle sim done;
  Alcotest.(check int) "enable gates" 5 (Sim.peek sim c.Circuits.cnt_q)

let test_sim_memory () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:16 () in
  let wen = N.input nl 1 and waddr = N.input nl 4 and wdata = N.input nl 8 in
  let raddr = N.input nl 4 in
  N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
  let rdata = N.mem_read nl m raddr in
  let sim = Sim.create nl in
  Sim.set_input sim wen 1;
  Sim.set_input sim waddr 3;
  Sim.set_input sim wdata 0x7E;
  Sim.cycle sim;
  Sim.set_input sim wen 0;
  Sim.set_input sim raddr 3;
  Sim.eval sim;
  Alcotest.(check int) "write then read" 0x7E (Sim.peek sim rdata);
  Alcotest.(check int) "backdoor read" 0x7E (Sim.peek_mem sim m 3)

let test_unconnected_register_rejected () =
  let nl = N.create () in
  let _q = N.reg nl 4 in
  Alcotest.check_raises "unconnected"
    (Failure "Sim.create: unconnected register ") (fun () ->
      ignore (Sim.create nl))

let test_width_mismatch_rejected () =
  let nl = N.create () in
  let a = N.input nl 4 and b = N.input nl 8 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Netlist: operand widths differ") (fun () ->
      ignore (N.and_ nl a b))

let string_contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let expect_width_error ~role f =
  match f () with
  | exception N.Width_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the %s: %s" role msg)
        true (string_contains msg role)
  | _ -> Alcotest.fail "expected Netlist.Width_error"

(* Regression: a multi-bit selector holding e.g. 2 would have fallen into
   the engines' old [= 1] truthiness tests and silently picked the wrong
   arm; the builders now reject them by name. *)
let test_multibit_mux_select_rejected () =
  let nl = N.create () in
  let s = N.input nl ~name:"sel2" 2 in
  let a = N.input nl 8 and b = N.input nl 8 in
  expect_width_error ~role:"selector" (fun () -> ignore (N.mux nl s a b))

let test_multibit_reg_enable_rejected () =
  let nl = N.create () in
  let en = N.input nl ~name:"en2" 2 in
  let q = N.reg nl ~name:"q" 8 in
  let d = N.input nl 8 in
  expect_width_error ~role:"enable" (fun () ->
      N.reg_connect nl q ~d ~en ())

let test_multibit_mem_wen_rejected () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  let wen = N.input nl ~name:"wen2" 2 in
  let addr = N.input nl 3 and data = N.input nl 8 in
  expect_width_error ~role:"write enable" (fun () ->
      N.mem_write nl m ~wen ~addr ~data)

let test_validate_accepts_well_formed () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  N.validate rob.Circuits.rob_nl

let test_modules_and_scoping () =
  let nl = N.create () in
  N.scoped nl "top" (fun () ->
      ignore (N.input nl 1);
      N.scoped nl "sub" (fun () -> ignore (N.input nl 1)));
  let mods = N.modules nl in
  Alcotest.(check bool) "top present" true (List.mem "top" mods);
  Alcotest.(check bool) "nested tag" true (List.mem "top.sub" mods)

let test_rob_circuit_update () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  let sim = Sim.create rob.Circuits.rob_nl in
  let push op =
    Sim.set_input sim rob.Circuits.enq_valid 1;
    Sim.set_input sim rob.Circuits.enq_uopc op;
    Sim.set_input sim rob.Circuits.rollback 0;
    Sim.cycle sim
  in
  (* tail starts at 0: first enqueue writes entry 0 and bumps the tail *)
  push 0x11;
  push 0x22;
  Sim.eval sim;
  Alcotest.(check int) "entry0" 0x11 (Sim.peek sim rob.Circuits.uopc.(0));
  Alcotest.(check int) "entry1" 0x22 (Sim.peek sim rob.Circuits.uopc.(1));
  Alcotest.(check int) "tail at 2" 2 (Sim.peek sim rob.Circuits.tail)

let test_rob_rollback () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  let sim = Sim.create rob.Circuits.rob_nl in
  Sim.set_input sim rob.Circuits.enq_valid 1;
  Sim.set_input sim rob.Circuits.enq_uopc 0x1;
  Sim.set_input sim rob.Circuits.rollback 0;
  Sim.cycle sim;
  Sim.cycle sim;
  Sim.set_input sim rob.Circuits.enq_valid 0;
  Sim.set_input sim rob.Circuits.rollback 1;
  Sim.set_input sim rob.Circuits.rollback_idx 0;
  Sim.cycle sim;
  Sim.eval sim;
  Alcotest.(check int) "tail restored" 0 (Sim.peek sim rob.Circuits.tail)

let test_lfb_circuit () =
  let lfb = Circuits.lfb ~entries:4 ~data_width:8 in
  let sim = Sim.create lfb.Circuits.lfb_nl in
  Sim.set_input sim lfb.Circuits.fill_valid 1;
  Sim.set_input sim lfb.Circuits.fill_idx 1;
  Sim.set_input sim lfb.Circuits.fill_data 0x99;
  Sim.set_input sim lfb.Circuits.retire 0;
  Sim.cycle sim;
  Sim.eval sim;
  Alcotest.(check int) "data filled" 0x99 (Sim.peek sim lfb.Circuits.data.(1));
  Alcotest.(check int) "valid set" 1 (Sim.peek sim lfb.Circuits.valid.(1));
  Sim.set_input sim lfb.Circuits.fill_valid 0;
  Sim.set_input sim lfb.Circuits.retire 1;
  Sim.set_input sim lfb.Circuits.retire_idx 1;
  Sim.cycle sim;
  Sim.eval sim;
  Alcotest.(check int) "valid cleared" 0 (Sim.peek sim lfb.Circuits.valid.(1));
  Alcotest.(check int) "stale data remains" 0x99 (Sim.peek sim lfb.Circuits.data.(1))

(* Flattening: the flattened netlist must be cycle-for-cycle equivalent. *)
let test_flatten_equivalent () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  let wen = N.input nl 1 and waddr = N.input nl 3 and wdata = N.input nl 8 in
  let raddr = N.input nl 3 in
  N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
  let rdata = N.mem_read nl m raddr in
  let flat, tr = Flatten.flatten_with_map nl in
  let sim = Sim.create nl and fsim = Sim.create flat in
  let rng = Dvz_util.Rng.create 77 in
  for _ = 1 to 200 do
    let we = Dvz_util.Rng.int rng 2 in
    let wa = Dvz_util.Rng.int rng 8 in
    let wd = Dvz_util.Rng.int rng 256 in
    let ra = Dvz_util.Rng.int rng 8 in
    Sim.set_input sim wen we;
    Sim.set_input sim waddr wa;
    Sim.set_input sim wdata wd;
    Sim.set_input sim raddr ra;
    Sim.set_input fsim (tr wen) we;
    Sim.set_input fsim (tr waddr) wa;
    Sim.set_input fsim (tr wdata) wd;
    Sim.set_input fsim (tr raddr) ra;
    Sim.eval sim;
    Sim.eval fsim;
    Alcotest.(check int) "read ports agree" (Sim.peek sim rdata)
      (Sim.peek fsim (tr rdata));
    Sim.step sim;
    Sim.step fsim
  done

let test_flatten_grows_cells () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:64 () in
  let wen = N.input nl 1 and waddr = N.input nl 6 and wdata = N.input nl 8 in
  N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
  ignore (N.mem_read nl m waddr);
  let flat = Flatten.flatten nl in
  Alcotest.(check bool) "flattening inflates the cell count" true
    (Flatten.cell_count flat > 4 * Flatten.cell_count nl)

(* Random straight-line circuit programs for property testing. *)
let random_netlist seed =
  let rng = Dvz_util.Rng.create seed in
  let nl = N.create () in
  let inputs = Array.init 3 (fun _ -> N.input nl 8) in
  let pool = ref (Array.to_list inputs) in
  let pick () = Dvz_util.Rng.choose_list rng !pool in
  for _ = 1 to 20 do
    let a = pick () and b = pick () in
    let s =
      match Dvz_util.Rng.int rng 6 with
      | 0 -> N.and_ nl a b
      | 1 -> N.or_ nl a b
      | 2 -> N.xor_ nl a b
      | 3 -> N.add nl a b
      | 4 -> N.sub nl a b
      | _ -> N.not_ nl a
    in
    pool := s :: !pool
  done;
  (nl, inputs, List.hd !pool)

let prop_flatten_identity_no_mem =
  QCheck.Test.make ~name:"flatten is identity-equivalent without memories"
    ~count:30 QCheck.small_int (fun seed ->
      let nl, inputs, out = random_netlist seed in
      let flat, tr = Flatten.flatten_with_map nl in
      let sim = Sim.create nl and fsim = Sim.create flat in
      let rng = Dvz_util.Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 20 do
        Array.iter
          (fun i ->
            let v = Dvz_util.Rng.int rng 256 in
            Sim.set_input sim i v;
            Sim.set_input fsim (tr i) v)
          inputs;
        Sim.eval sim;
        Sim.eval fsim;
        if Sim.peek sim out <> Sim.peek fsim (tr out) then ok := false
      done;
      !ok)

let prop_xor_self_zero =
  QCheck.Test.make ~name:"x xor x evaluates to 0" ~count:100 QCheck.small_int
    (fun v ->
      let nl = N.create () in
      let a = N.input nl 8 in
      let z = N.xor_ nl a a in
      let sim = Sim.create nl in
      Sim.set_input sim a v;
      Sim.eval sim;
      Sim.peek sim z = 0)

(* --- compiled vs interpretive engine -------------------------------------- *)

(* A random sequential circuit exercising every opcode of the compiled
   engine: the full combinational repertoire plus enabled registers and a
   memory with out-of-range addresses (8-bit addresses into a depth-8
   array, so the bounds paths run too). *)
let random_seq_netlist seed =
  let rng = Dvz_util.Rng.create seed in
  let nl = N.create () in
  let inputs8 = Array.init 3 (fun i -> N.input nl ~name:(Printf.sprintf "in%d" i) 8) in
  let sel_in = N.input nl ~name:"sel" 1 in
  let regs =
    Array.init 3 (fun i -> N.reg nl ~name:(Printf.sprintf "r%d" i) ~init:i 8)
  in
  let pool8 = ref (Array.to_list inputs8 @ Array.to_list regs) in
  let pool1 = ref [ sel_in ] in
  let pick8 () = Dvz_util.Rng.choose_list rng !pool8 in
  let pick1 () = Dvz_util.Rng.choose_list rng !pool1 in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  for _ = 1 to 30 do
    let a = pick8 () and b = pick8 () in
    match Dvz_util.Rng.int rng 12 with
    | 0 -> pool8 := N.and_ nl a b :: !pool8
    | 1 -> pool8 := N.or_ nl a b :: !pool8
    | 2 -> pool8 := N.xor_ nl a b :: !pool8
    | 3 -> pool8 := N.add nl a b :: !pool8
    | 4 -> pool8 := N.sub nl a b :: !pool8
    | 5 -> pool8 := N.not_ nl a :: !pool8
    | 6 -> pool8 := N.mux nl (pick1 ()) a b :: !pool8
    | 7 -> pool1 := N.eq nl a b :: !pool1
    | 8 -> pool1 := N.lt nl a b :: !pool1
    | 9 ->
        pool8 := N.shl nl a (1 + Dvz_util.Rng.int rng 3) :: !pool8;
        pool8 := N.shr nl b (1 + Dvz_util.Rng.int rng 3) :: !pool8
    | 10 ->
        pool8 :=
          N.concat nl
            (N.slice nl a ~lo:0 ~width:4)
            (N.slice nl b ~lo:4 ~width:4)
          :: !pool8
    | _ -> pool8 := N.mem_read nl m a :: !pool8
  done;
  N.mem_write nl m ~wen:(pick1 ()) ~addr:(pick8 ()) ~data:(pick8 ());
  Array.iter
    (fun q ->
      let en = if Dvz_util.Rng.int rng 2 = 0 then Some (pick1 ()) else None in
      N.reg_connect nl q ~d:(pick8 ()) ?en ())
    regs;
  (nl, inputs8, sel_in, m)

(* The tentpole invariant: the compiled engine is bit-identical to the
   interpreter — every signal, every memory word, every tick. *)
let prop_engines_equivalent =
  QCheck.Test.make ~name:"compiled engine is bit-identical to interpreter"
    ~count:25 QCheck.small_int (fun seed ->
      let nl, inputs8, sel_in, m = random_seq_netlist seed in
      let c = Sim.create nl in
      let i = Sim.create ~engine:`Interp nl in
      let rng = Dvz_util.Rng.create (seed + 1000) in
      let ok = ref (Sim.engine c = `Compiled && Sim.engine i = `Interp) in
      for _ = 1 to 30 do
        Array.iter
          (fun s ->
            let v = Dvz_util.Rng.int rng 256 in
            Sim.set_input c s v;
            Sim.set_input i s v)
          inputs8;
        let sv = Dvz_util.Rng.int rng 2 in
        Sim.set_input c sel_in sv;
        Sim.set_input i sel_in sv;
        Sim.cycle c;
        Sim.cycle i;
        for k = 0 to N.num_signals nl - 1 do
          let s = N.signal_of_int nl k in
          if Sim.peek c s <> Sim.peek i s then ok := false
        done;
        for w = 0 to N.mem_depth m - 1 do
          if Sim.peek_mem c m w <> Sim.peek_mem i m w then ok := false
        done
      done;
      !ok && Sim.cycles c = Sim.cycles i)

(* --- optimization passes -------------------------------------------------- *)

(* Rewrite-biased random sequential circuit: duplicated operands, constants
   (with 0 and all-ones over-represented), const-selector muxes, nested
   slices and shifts — the patterns the passes target.  Everything flows
   into named registers or the memory, so comparing named state between the
   optimized and unoptimized engines exercises the rewritten cones. *)
let random_opt_netlist seed =
  let rng = Dvz_util.Rng.create seed in
  let nl = N.create () in
  let inputs8 =
    Array.init 3 (fun i -> N.input nl ~name:(Printf.sprintf "in%d" i) 8)
  in
  let sel_in = N.input nl ~name:"sel" 1 in
  let regs =
    Array.init 3 (fun i -> N.reg nl ~name:(Printf.sprintf "r%d" i) ~init:i 8)
  in
  let pool8 = ref (Array.to_list inputs8 @ Array.to_list regs) in
  let pool1 = ref [ sel_in ] in
  let const8 () =
    match Dvz_util.Rng.int rng 4 with
    | 0 -> N.const nl 8 0
    | 1 -> N.const nl 8 0xFF
    | _ -> N.const nl 8 (Dvz_util.Rng.int rng 256)
  in
  let pick8 () =
    if Dvz_util.Rng.int rng 5 = 0 then const8 ()
    else Dvz_util.Rng.choose_list rng !pool8
  in
  (* one-in-three chance of [x op x] *)
  let pick8b a = if Dvz_util.Rng.int rng 3 = 0 then a else pick8 () in
  let pick1 () =
    if Dvz_util.Rng.int rng 5 = 0 then N.const nl 1 (Dvz_util.Rng.int rng 2)
    else Dvz_util.Rng.choose_list rng !pool1
  in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  for _ = 1 to 40 do
    let a = pick8 () in
    let b = pick8b a in
    match Dvz_util.Rng.int rng 13 with
    | 0 -> pool8 := N.and_ nl a b :: !pool8
    | 1 -> pool8 := N.or_ nl a b :: !pool8
    | 2 -> pool8 := N.xor_ nl a b :: !pool8
    | 3 -> pool8 := N.add nl a b :: !pool8
    | 4 -> pool8 := N.sub nl a b :: !pool8
    | 5 -> pool8 := N.not_ nl (N.not_ nl a) :: !pool8
    | 6 -> pool8 := N.mux nl (pick1 ()) a b :: !pool8
    | 7 -> pool1 := N.eq nl a b :: !pool1
    | 8 -> pool1 := N.lt nl a b :: !pool1
    | 9 ->
        let k1 = Dvz_util.Rng.int rng 4 and k2 = Dvz_util.Rng.int rng 4 in
        pool8 := N.shl nl (N.shl nl a k1) k2 :: !pool8;
        pool8 := N.shr nl (N.shr nl b k1) k2 :: !pool8
    | 10 ->
        let inner = N.slice nl a ~lo:Dvz_util.Rng.(int rng 4) ~width:4 in
        let outer = N.slice nl inner ~lo:1 ~width:2 in
        pool8 := N.concat nl outer (N.slice nl b ~lo:0 ~width:6) :: !pool8
    | 11 -> pool8 := N.slice nl a ~lo:0 ~width:8 :: !pool8
    | _ -> pool8 := N.mem_read nl m a :: !pool8
  done;
  N.mem_write nl m ~wen:(pick1 ()) ~addr:(pick8 ()) ~data:(pick8 ());
  Array.iter
    (fun q ->
      let en = if Dvz_util.Rng.int rng 2 = 0 then Some (pick1 ()) else None in
      N.reg_connect nl q ~d:(pick8 ()) ?en ())
    regs;
  (nl, inputs8, sel_in, regs, m)

(* The optimization contract: bit-identical named signals, registers and
   memory contents on every cycle.  (Dead unnamed cells read 0 in the
   optimized engine by design, so only observable state is compared.) *)
let prop_opt_preserves_named_state =
  QCheck.Test.make
    ~name:"optimized netlist is bit-identical on named signals/regs/mems"
    ~count:40 QCheck.small_int (fun seed ->
      let nl, inputs8, sel_in, regs, m = random_opt_netlist seed in
      let plain = Sim.create nl in
      let opt = Sim.create ~opt:true nl in
      let rng = Dvz_util.Rng.create (seed + 3000) in
      let ok = ref true in
      for _ = 1 to 30 do
        Array.iter
          (fun s ->
            let v = Dvz_util.Rng.int rng 256 in
            Sim.set_input plain s v;
            Sim.set_input opt s v)
          inputs8;
        let sv = Dvz_util.Rng.int rng 2 in
        Sim.set_input plain sel_in sv;
        Sim.set_input opt sel_in sv;
        Sim.cycle plain;
        Sim.cycle opt;
        for i = 0 to N.num_signals nl - 1 do
          let s = N.signal_of_int nl i in
          if N.name_of nl s <> "" && Sim.peek plain s <> Sim.peek opt s then
            ok := false
        done;
        Array.iter
          (fun q -> if Sim.peek plain q <> Sim.peek opt q then ok := false)
          regs;
        for w = 0 to N.mem_depth m - 1 do
          if Sim.peek_mem plain m w <> Sim.peek_mem opt m w then ok := false
        done
      done;
      !ok && Sim.cycles plain = Sim.cycles opt)

(* Deterministic pass-by-pass accounting on a circuit built from one of
   each rewrite pattern. *)
let test_passes_stats () =
  let nl = N.create () in
  let a = N.input nl ~name:"a" 8 in
  let c1 = N.const nl 8 5 and c2 = N.const nl 8 3 in
  let folded = N.add nl c1 c2 in
  let aliased = N.and_ nl a a in
  let s1 = N.slice nl a ~lo:2 ~width:4 in
  let s2 = N.slice nl s1 ~lo:1 ~width:2 in
  ignore (N.xor_ nl a (N.not_ nl a));
  (* dead cone *)
  let q = N.reg nl ~name:"q" 8 in
  let d =
    N.concat nl
      (N.concat nl s2 (N.slice nl folded ~lo:0 ~width:4))
      (N.slice nl aliased ~lo:0 ~width:2)
  in
  N.reg_connect nl q ~d ();
  let onl, st = Passes.run nl in
  N.validate onl;
  Alcotest.(check bool) "cells eliminated" true
    (st.Passes.st_cells_after < st.Passes.st_cells_before);
  let rewrites name =
    List.fold_left
      (fun acc p ->
        if p.Passes.ps_name = name then acc + p.Passes.ps_rewrites else acc)
      0 st.Passes.st_passes
  in
  Alcotest.(check bool) "const-fold fired" true (rewrites "const-fold" > 0);
  Alcotest.(check bool) "alias fired" true (rewrites "alias" > 0);
  Alcotest.(check bool) "fuse fired" true (rewrites "fuse" > 0);
  Alcotest.(check bool) "dce fired" true (rewrites "dce" > 0);
  (* functional spot-check on the surviving named state *)
  let plain = Sim.create nl and opt = Sim.create onl in
  Sim.set_input plain a 0xA7;
  Sim.set_input opt a 0xA7;
  Sim.cycle plain;
  Sim.cycle opt;
  Alcotest.(check int) "q agrees" (Sim.peek plain q) (Sim.peek opt q)

let test_passes_unknown_name_rejected () =
  let nl = N.create () in
  ignore (N.input nl 1);
  Alcotest.check_raises "unknown pass"
    (Invalid_argument "Passes.run: unknown pass bogus") (fun () ->
      ignore (Passes.run ~passes:[ "bogus" ] nl))

(* The [--no-ir-opt] gate: with [set_enabled false], [?opt:true] engines run
   the unoptimized netlist (observable through a dead cell, which the
   optimized engine reads as 0). *)
let test_set_enabled_vetoes_opt () =
  let nl = N.create () in
  let a = N.input nl ~name:"a" 8 and b = N.input nl ~name:"b" 8 in
  let dead = N.xor_ nl a b in
  let q = N.reg nl ~name:"q" 8 in
  N.reg_connect nl q ~d:a ();
  let run () =
    let sim = Sim.create ~opt:true nl in
    Sim.set_input sim a 0xF0;
    Sim.set_input sim b 0x0F;
    Sim.eval sim;
    Sim.peek sim dead
  in
  Alcotest.(check int) "dead cell reads 0 when optimized" 0 (run ());
  Passes.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Passes.set_enabled true)
    (fun () ->
      Alcotest.(check int) "gate down: unoptimized semantics" 0xFF (run ()))

(* --- lane engine ---------------------------------------------------------- *)

(* Lanes are pinned to the scalar engine: every lane must match an
   independent scalar simulation driven with the same stimulus — every
   signal, every memory word, every tick. *)
let prop_lanes_match_scalar =
  QCheck.Test.make ~name:"lane engine is bit-identical to scalar per lane"
    ~count:15 QCheck.small_int (fun seed ->
      let nl, inputs8, sel_in, m = random_seq_netlist seed in
      let k = 4 in
      let lanes = Sim.Lanes.create ~k nl in
      let scalars = Array.init k (fun _ -> Sim.create nl) in
      let rng = Dvz_util.Rng.create (seed + 2000) in
      let ok = ref (Sim.Lanes.k lanes = k) in
      for _ = 1 to 20 do
        for l = 0 to k - 1 do
          Array.iter
            (fun s ->
              let v = Dvz_util.Rng.int rng 256 in
              Sim.Lanes.set_input lanes ~lane:l s v;
              Sim.set_input scalars.(l) s v)
            inputs8;
          let sv = Dvz_util.Rng.int rng 2 in
          Sim.Lanes.set_input lanes ~lane:l sel_in sv;
          Sim.set_input scalars.(l) sel_in sv
        done;
        Sim.Lanes.cycle lanes;
        Array.iter Sim.cycle scalars;
        for l = 0 to k - 1 do
          for i = 0 to N.num_signals nl - 1 do
            let s = N.signal_of_int nl i in
            if Sim.Lanes.peek lanes ~lane:l s <> Sim.peek scalars.(l) s then
              ok := false
          done;
          for w = 0 to N.mem_depth m - 1 do
            if
              Sim.Lanes.peek_mem lanes ~lane:l m w
              <> Sim.peek_mem scalars.(l) m w
            then ok := false
          done
        done
      done;
      !ok && Sim.Lanes.cycles lanes = Sim.cycles scalars.(0))

(* Lanes with optimization on still match unoptimized scalars on named
   state. *)
let prop_opt_lanes_match_scalar =
  QCheck.Test.make
    ~name:"optimized lanes match unoptimized scalars on named state"
    ~count:10 QCheck.small_int (fun seed ->
      let nl, inputs8, sel_in, regs, m = random_opt_netlist seed in
      let k = 3 in
      let lanes = Sim.Lanes.create ~opt:true ~k nl in
      let scalars = Array.init k (fun _ -> Sim.create nl) in
      let rng = Dvz_util.Rng.create (seed + 4000) in
      let ok = ref true in
      for _ = 1 to 15 do
        for l = 0 to k - 1 do
          Array.iter
            (fun s ->
              let v = Dvz_util.Rng.int rng 256 in
              Sim.Lanes.set_input lanes ~lane:l s v;
              Sim.set_input scalars.(l) s v)
            inputs8;
          let sv = Dvz_util.Rng.int rng 2 in
          Sim.Lanes.set_input lanes ~lane:l sel_in sv;
          Sim.set_input scalars.(l) sel_in sv
        done;
        Sim.Lanes.cycle lanes;
        Array.iter Sim.cycle scalars;
        for l = 0 to k - 1 do
          Array.iter
            (fun q ->
              if Sim.Lanes.peek lanes ~lane:l q <> Sim.peek scalars.(l) q then
                ok := false)
            regs;
          for w = 0 to N.mem_depth m - 1 do
            if
              Sim.Lanes.peek_mem lanes ~lane:l m w
              <> Sim.peek_mem scalars.(l) m w
            then ok := false
          done
        done
      done;
      !ok)

(* The steady-state lane cycle must not allocate either — the whole point
   of the SoA layout is tight loops over preallocated planes. *)
let test_lanes_cycle_allocation_free () =
  let rob = Circuits.rob ~entries:16 ~uopc_width:8 in
  let lanes = Sim.Lanes.create ~k:8 rob.Circuits.rob_nl in
  Sim.Lanes.set_input_all lanes rob.Circuits.enq_valid 1;
  Sim.Lanes.set_input_all lanes rob.Circuits.enq_uopc 0x2A;
  Sim.Lanes.set_input_all lanes rob.Circuits.rollback 0;
  Sim.Lanes.set_input_all lanes rob.Circuits.rollback_idx 0;
  for _ = 1 to 100 do Sim.Lanes.cycle lanes done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do Sim.Lanes.cycle lanes done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "1000 lane cycles (k=8) allocated %.0f minor words" delta)
    true (delta < 64.0)

let test_lanes_bad_k_rejected () =
  let c = Circuits.counter ~width:8 in
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Sim.Lanes.create: k must be positive") (fun () ->
      ignore (Sim.Lanes.create ~k:0 c.Circuits.cnt_nl))

(* The steady-state compiled cycle must not allocate: Gc.minor_words moves
   only by the float boxes of the probe calls themselves. *)
let test_compiled_cycle_allocation_free () =
  let rob = Circuits.rob ~entries:16 ~uopc_width:8 in
  let sim = Sim.create rob.Circuits.rob_nl in
  Sim.set_input sim rob.Circuits.enq_valid 1;
  Sim.set_input sim rob.Circuits.enq_uopc 0x2A;
  Sim.set_input sim rob.Circuits.rollback 0;
  Sim.set_input sim rob.Circuits.rollback_idx 0;
  for _ = 1 to 100 do Sim.cycle sim done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do Sim.cycle sim done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "1000 compiled cycles allocated %.0f minor words" delta)
    true (delta < 64.0)

let test_hooks_run_in_registration_order () =
  let c = Circuits.counter ~width:8 in
  let sim = Sim.create c.Circuits.cnt_nl in
  Sim.set_input sim c.Circuits.cnt_en 1;
  let calls = ref [] in
  for h = 1 to 5 do
    Sim.on_cycle sim (fun n -> calls := (h, n) :: !calls)
  done;
  Sim.cycle sim;
  Sim.cycle sim;
  Alcotest.(check (list (pair int int)))
    "hooks fire in registration order with the new cycle count"
    [ (1, 1); (2, 1); (3, 1); (4, 1); (5, 1);
      (1, 2); (2, 2); (3, 2); (4, 2); (5, 2) ]
    (List.rev !calls)

(* Regression for the quadratic [hooks <- hooks @ [h]] append: registering
   many hooks and cycling must stay fast and keep order. *)
let test_many_hooks () =
  let c = Circuits.counter ~width:8 in
  let sim = Sim.create c.Circuits.cnt_nl in
  Sim.set_input sim c.Circuits.cnt_en 1;
  let count = ref 0 in
  for _ = 1 to 2_000 do
    Sim.on_cycle sim (fun _ -> incr count)
  done;
  Sim.cycle sim;
  Alcotest.(check int) "all hooks ran once" 2_000 !count

(* --- VCD ------------------------------------------------------------------ *)

let test_vcd_header_and_changes () =
  let c = Circuits.counter ~width:4 in
  let vcd =
    Vcd.dump_simulation c.Circuits.cnt_nl ~cycles:5 ~drive:(fun sim _ ->
        Sim.set_input sim c.Circuits.cnt_en 1)
  in
  let contains sub =
    let n = String.length sub and m = String.length vcd in
    let rec go i = i + n <= m && (String.sub vcd i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions");
  Alcotest.(check bool) "declares q" true (contains " q ");
  Alcotest.(check bool) "scope from module tag" true
    (contains "$scope module counter");
  Alcotest.(check bool) "binary values" true (contains "b0011");
  Alcotest.(check bool) "timestamps" true (contains "#4")

let test_vcd_only_changes_dumped () =
  let c = Circuits.counter ~width:4 in
  let vcd =
    Vcd.dump_simulation c.Circuits.cnt_nl ~cycles:6 ~drive:(fun sim _ ->
        Sim.set_input sim c.Circuits.cnt_en 0)
  in
  (* with the counter disabled, q never changes after time 0: at most the
     initial dump plus the final timestamp *)
  let q_lines =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = 'b')
      (String.split_on_char '\n' vcd)
  in
  Alcotest.(check int) "single value record for q" 1 (List.length q_lines)

let test_vcd_engines_agree () =
  let c = Circuits.counter ~width:4 in
  let drive sim i =
    Sim.set_input sim c.Circuits.cnt_en (if i < 6 then 1 else 0)
  in
  let compiled = Vcd.dump_simulation c.Circuits.cnt_nl ~cycles:8 ~drive in
  let interp =
    Vcd.dump_simulation ~engine:`Interp c.Circuits.cnt_nl ~cycles:8 ~drive
  in
  Alcotest.(check string) "identical waveforms from both engines" compiled
    interp

(* Correctness-guard regression: optimization must not change what a VCD
   dump records — the passes preserve every named signal, and the writer
   enumerates the source netlist, so the bytes are identical. *)
let test_vcd_identical_with_opt () =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let drive sim i =
    Sim.set_input sim rob.Circuits.enq_valid (i land 1);
    Sim.set_input sim rob.Circuits.enq_uopc ((i * 13) land 0x7F);
    Sim.set_input sim rob.Circuits.rollback (if i = 7 then 1 else 0);
    Sim.set_input sim rob.Circuits.rollback_idx 0
  in
  let plain = Vcd.dump_simulation rob.Circuits.rob_nl ~cycles:12 ~drive in
  let opt =
    Vcd.dump_simulation ~opt:true rob.Circuits.rob_nl ~cycles:12 ~drive
  in
  Alcotest.(check string) "byte-identical waveform with optimization" plain
    opt

let () =
  Alcotest.run "dvz_ir"
    [ ( "bits",
        [ Alcotest.test_case "mask" `Quick test_bits_mask;
          Alcotest.test_case "trunc" `Quick test_bits_trunc;
          Alcotest.test_case "bit" `Quick test_bits_bit;
          Alcotest.test_case "replicate" `Quick test_bits_replicate;
          Alcotest.test_case "popcount" `Quick test_bits_popcount;
          QCheck_alcotest.to_alcotest prop_popcount_matches_naive;
          Alcotest.test_case "spread_up" `Quick test_bits_spread_up ] );
      ( "sim",
        [ Alcotest.test_case "combinational" `Quick test_sim_comb;
          Alcotest.test_case "arithmetic" `Quick test_sim_arith;
          Alcotest.test_case "mux" `Quick test_sim_mux_select;
          Alcotest.test_case "slice/concat" `Quick test_sim_slice_concat;
          Alcotest.test_case "register latch" `Quick test_sim_register_latch;
          Alcotest.test_case "memory" `Quick test_sim_memory;
          Alcotest.test_case "unconnected register" `Quick
            test_unconnected_register_rejected;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch_rejected;
          Alcotest.test_case "multi-bit mux select" `Quick
            test_multibit_mux_select_rejected;
          Alcotest.test_case "multi-bit reg enable" `Quick
            test_multibit_reg_enable_rejected;
          Alcotest.test_case "multi-bit mem wen" `Quick
            test_multibit_mem_wen_rejected;
          Alcotest.test_case "validate accepts well-formed" `Quick
            test_validate_accepts_well_formed;
          Alcotest.test_case "module scoping" `Quick test_modules_and_scoping;
          QCheck_alcotest.to_alcotest prop_xor_self_zero ] );
      ( "engine",
        [ QCheck_alcotest.to_alcotest prop_engines_equivalent;
          Alcotest.test_case "compiled cycle allocation-free" `Quick
            test_compiled_cycle_allocation_free;
          Alcotest.test_case "hook order" `Quick
            test_hooks_run_in_registration_order;
          Alcotest.test_case "many hooks" `Quick test_many_hooks ] );
      ( "passes",
        [ QCheck_alcotest.to_alcotest prop_opt_preserves_named_state;
          Alcotest.test_case "per-pass stats" `Quick test_passes_stats;
          Alcotest.test_case "unknown pass rejected" `Quick
            test_passes_unknown_name_rejected;
          Alcotest.test_case "set_enabled veto" `Quick
            test_set_enabled_vetoes_opt ] );
      ( "lanes",
        [ QCheck_alcotest.to_alcotest prop_lanes_match_scalar;
          QCheck_alcotest.to_alcotest prop_opt_lanes_match_scalar;
          Alcotest.test_case "lane cycle allocation-free" `Quick
            test_lanes_cycle_allocation_free;
          Alcotest.test_case "bad k rejected" `Quick
            test_lanes_bad_k_rejected ] );
      ( "circuits",
        [ Alcotest.test_case "rob update" `Quick test_rob_circuit_update;
          Alcotest.test_case "rob rollback" `Quick test_rob_rollback;
          Alcotest.test_case "lfb decoy" `Quick test_lfb_circuit ] );
      ( "vcd",
        [ Alcotest.test_case "header and changes" `Quick test_vcd_header_and_changes;
          Alcotest.test_case "change-only dumping" `Quick
            test_vcd_only_changes_dumped;
          Alcotest.test_case "engines agree" `Quick test_vcd_engines_agree;
          Alcotest.test_case "identical with optimization" `Quick
            test_vcd_identical_with_opt ] );
      ( "flatten",
        [ Alcotest.test_case "memory equivalence" `Quick test_flatten_equivalent;
          Alcotest.test_case "cell inflation" `Quick test_flatten_grows_cells;
          QCheck_alcotest.to_alcotest prop_flatten_identity_no_mem ] ) ]
