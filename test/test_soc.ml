(* Tests for Dvz_soc: permissions, physical memory and the dynamic
   swappable memory. *)

open Dvz_soc
module Golden = Dvz_isa.Golden
module Trap = Dvz_isa.Trap

let test_perm_constructors () =
  Alcotest.(check bool) "rwx" true Perm.rwx.Perm.exec;
  Alcotest.(check bool) "rw no exec" false Perm.rw.Perm.exec;
  Alcotest.(check bool) "rx no write" false Perm.rx.Perm.write;
  Alcotest.(check bool) "priv_only drops user" false
    (Perm.priv_only Perm.rwx).Perm.user;
  Alcotest.(check bool) "absent" false Perm.absent.Perm.present;
  Alcotest.(check bool) "none unreadable" false Perm.none.Perm.read

let test_mem_rw () =
  let m = Phys_mem.create () in
  Phys_mem.write m ~addr:0x100 ~size:4 0xDEADBEEF;
  Alcotest.(check int) "word read" 0xDEADBEEF (Phys_mem.read m ~addr:0x100 ~size:4);
  Alcotest.(check int) "byte read" 0xEF (Phys_mem.read_byte m 0x100);
  Alcotest.(check int) "little endian" 0xDE (Phys_mem.read_byte m 0x103)

let test_mem_out_of_range () =
  let m = Phys_mem.create () in
  Alcotest.(check int) "oob read is 0" 0 (Phys_mem.read_byte m 0x1000000);
  Phys_mem.write_byte m 0x1000000 42 (* silently ignored *)

let test_mem_write_words () =
  let m = Phys_mem.create () in
  Phys_mem.write_words m 0x200 [| 0x11223344; 0x55667788 |];
  Alcotest.(check int) "word0" 0x11223344 (Phys_mem.read m ~addr:0x200 ~size:4);
  Alcotest.(check int) "word1" 0x55667788 (Phys_mem.read m ~addr:0x204 ~size:4)

let test_checked_access_fault () =
  let m = Phys_mem.create () in
  Phys_mem.set_perm m 0x3000 Perm.none;
  (match Phys_mem.checked_load m ~priv:Golden.Machine ~addr:0x3000 ~size:8 with
  | Error Trap.Load_access_fault -> ()
  | _ -> Alcotest.fail "expected load access fault");
  match
    Phys_mem.checked_store m ~priv:Golden.Machine ~addr:0x3000 ~size:8 ~value:1
  with
  | Error Trap.Store_access_fault -> ()
  | _ -> Alcotest.fail "expected store access fault"

let test_checked_page_fault () =
  let m = Phys_mem.create () in
  Phys_mem.set_perm m 0x4000 Perm.absent;
  (match Phys_mem.checked_load m ~priv:Golden.Machine ~addr:0x4000 ~size:8 with
  | Error Trap.Load_page_fault -> ()
  | _ -> Alcotest.fail "expected load page fault");
  match
    Phys_mem.checked_store m ~priv:Golden.Machine ~addr:0x4008 ~size:8 ~value:1
  with
  | Error Trap.Store_page_fault -> ()
  | _ -> Alcotest.fail "expected store page fault"

let test_checked_privilege () =
  let m = Phys_mem.create () in
  Phys_mem.set_perm m 0x5000 (Perm.priv_only Perm.rw);
  (match Phys_mem.checked_load m ~priv:Golden.User ~addr:0x5000 ~size:8 with
  | Error Trap.Load_access_fault -> ()
  | _ -> Alcotest.fail "user load should fault");
  match Phys_mem.checked_load m ~priv:Golden.Machine ~addr:0x5000 ~size:8 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "machine load should succeed"

let test_checked_fetch_exec () =
  let m = Phys_mem.create () in
  Phys_mem.set_perm m 0x6000 Perm.rw;
  (match Phys_mem.checked_fetch m ~priv:Golden.Machine ~addr:0x6000 with
  | Error Trap.Fetch_access_fault -> ()
  | _ -> Alcotest.fail "fetch from non-exec page should fault");
  match Phys_mem.checked_fetch m ~priv:Golden.Machine ~addr:0x1000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fetch from rwx page should succeed"

let test_checked_oob () =
  let m = Phys_mem.create () in
  match
    Phys_mem.checked_load m ~priv:Golden.Machine ~addr:(Layout.mem_size + 8)
      ~size:8
  with
  | Error Trap.Load_access_fault -> ()
  | _ -> Alcotest.fail "out-of-range load should access-fault"

let test_mem_copy_isolated () =
  let a = Phys_mem.create () in
  Phys_mem.write_byte a 0x10 1;
  let b = Phys_mem.copy a in
  Phys_mem.write_byte b 0x10 2;
  Alcotest.(check int) "original" 1 (Phys_mem.read_byte a 0x10);
  Alcotest.(check int) "copy" 2 (Phys_mem.read_byte b 0x10)

(* --- swapmem ------------------------------------------------------------- *)

let blob name words is_transient =
  { Swapmem.name; words = Array.of_list words; is_transient }

let test_swap_schedule_order () =
  let sm =
    Swapmem.create
      ~blobs:[ blob "a" [ 1 ] false; blob "b" [ 2 ] false; blob "t" [ 3 ] true ]
      ~schedule:[ 1; 0; 2 ]
  in
  let mem = Phys_mem.create () in
  let names = ref [] in
  let rec drain () =
    match Swapmem.load_next sm mem with
    | None -> ()
    | Some b ->
        names := b.Swapmem.name :: !names;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "schedule order" [ "b"; "a"; "t" ]
    (List.rev !names)

let test_swap_loads_words () =
  let sm = Swapmem.create ~blobs:[ blob "x" [ 0xAB; 0xCD ] false ] ~schedule:[ 0 ] in
  let mem = Phys_mem.create () in
  ignore (Swapmem.load_next sm mem);
  Alcotest.(check int) "word 0" 0xAB
    (Phys_mem.read mem ~addr:Layout.swap_base ~size:4);
  Alcotest.(check int) "word 1" 0xCD
    (Phys_mem.read mem ~addr:(Layout.swap_base + 4) ~size:4)

let test_swap_pads_with_ebreak () =
  let sm = Swapmem.create ~blobs:[ blob "x" [ 0xAB ] false ] ~schedule:[ 0 ] in
  let mem = Phys_mem.create () in
  ignore (Swapmem.load_next sm mem);
  let ebreak = Dvz_isa.Encode.encode Dvz_isa.Insn.Ebreak in
  Alcotest.(check int) "padding word" ebreak
    (Phys_mem.read mem ~addr:(Layout.swap_base + 8) ~size:4);
  Alcotest.(check int) "last region word" ebreak
    (Phys_mem.read mem ~addr:(Layout.swap_base + Layout.swap_size - 4) ~size:4)

let test_swap_overwrites_previous () =
  let sm =
    Swapmem.create
      ~blobs:[ blob "a" [ 0x11; 0x22 ] false; blob "b" [ 0x33 ] false ]
      ~schedule:[ 0; 1 ]
  in
  let mem = Phys_mem.create () in
  ignore (Swapmem.load_next sm mem);
  ignore (Swapmem.load_next sm mem);
  Alcotest.(check int) "first word replaced" 0x33
    (Phys_mem.read mem ~addr:Layout.swap_base ~size:4);
  let ebreak = Dvz_isa.Encode.encode Dvz_isa.Insn.Ebreak in
  Alcotest.(check int) "stale second word cleared" ebreak
    (Phys_mem.read mem ~addr:(Layout.swap_base + 4) ~size:4)

let test_swap_reset () =
  let sm = Swapmem.create ~blobs:[ blob "a" [ 1 ] false ] ~schedule:[ 0 ] in
  let mem = Phys_mem.create () in
  ignore (Swapmem.load_next sm mem);
  Alcotest.(check int) "exhausted" 0 (Swapmem.remaining sm);
  Swapmem.reset sm;
  Alcotest.(check int) "rewound" 1 (Swapmem.remaining sm)

let test_swap_current () =
  let sm =
    Swapmem.create ~blobs:[ blob "a" [ 1 ] false; blob "b" [ 2 ] true ]
      ~schedule:[ 0; 1 ]
  in
  let mem = Phys_mem.create () in
  Alcotest.(check bool) "no current before load" true (Swapmem.current sm = None);
  ignore (Swapmem.load_next sm mem);
  (match Swapmem.current sm with
  | Some b -> Alcotest.(check string) "current name" "a" b.Swapmem.name
  | None -> Alcotest.fail "expected current blob");
  ignore (Swapmem.load_next sm mem);
  match Swapmem.current sm with
  | Some b -> Alcotest.(check bool) "transient flag" true b.Swapmem.is_transient
  | None -> Alcotest.fail "expected current blob"

let test_swap_bad_schedule () =
  Alcotest.check_raises "index range"
    (Invalid_argument "Swapmem.create: schedule index out of range") (fun () ->
      ignore (Swapmem.create ~blobs:[ blob "a" [ 1 ] false ] ~schedule:[ 1 ]))

let test_swap_oversized_blob () =
  let words = List.init ((Layout.swap_size / 4) + 1) (fun i -> i) in
  Alcotest.check_raises "too large"
    (Invalid_argument "Swapmem.create: blob too large: big") (fun () ->
      ignore (Swapmem.create ~blobs:[ blob "big" words false ] ~schedule:[ 0 ]))

let test_with_schedule_preserves_blobs () =
  let sm =
    Swapmem.create ~blobs:[ blob "a" [ 1 ] false; blob "b" [ 2 ] false ]
      ~schedule:[ 0; 1 ]
  in
  let sm2 = Swapmem.with_schedule sm [ 1 ] in
  Alcotest.(check int) "blob count preserved" 2 (List.length (Swapmem.blobs sm2));
  Alcotest.(check (list int)) "new schedule" [ 1 ] (Swapmem.schedule sm2);
  Alcotest.(check (list int)) "original untouched" [ 0; 1 ] (Swapmem.schedule sm)

let prop_schedule_multiset =
  QCheck.Test.make ~name:"loaded blobs follow the schedule exactly" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 10) (int_bound 2))
    (fun schedule ->
      let blobs = [ blob "a" [ 1 ] false; blob "b" [ 2 ] false; blob "c" [ 3 ] true ] in
      let sm = Swapmem.create ~blobs ~schedule in
      let mem = Phys_mem.create () in
      let rec drain acc =
        match Swapmem.load_next sm mem with
        | None -> List.rev acc
        | Some b -> drain (b.Swapmem.name :: acc)
      in
      let names = drain [] in
      let expected =
        List.map (fun i -> (List.nth blobs i).Swapmem.name) schedule
      in
      names = expected)

let () =
  Alcotest.run "dvz_soc"
    [ ( "perm",
        [ Alcotest.test_case "constructors" `Quick test_perm_constructors ] );
      ( "phys_mem",
        [ Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "out of range" `Quick test_mem_out_of_range;
          Alcotest.test_case "write_words" `Quick test_mem_write_words;
          Alcotest.test_case "access fault" `Quick test_checked_access_fault;
          Alcotest.test_case "page fault" `Quick test_checked_page_fault;
          Alcotest.test_case "privilege" `Quick test_checked_privilege;
          Alcotest.test_case "fetch exec bit" `Quick test_checked_fetch_exec;
          Alcotest.test_case "out-of-range checked" `Quick test_checked_oob;
          Alcotest.test_case "copy isolation" `Quick test_mem_copy_isolated ] );
      ( "swapmem",
        [ Alcotest.test_case "schedule order" `Quick test_swap_schedule_order;
          Alcotest.test_case "loads words" `Quick test_swap_loads_words;
          Alcotest.test_case "ebreak padding" `Quick test_swap_pads_with_ebreak;
          Alcotest.test_case "overwrite previous" `Quick
            test_swap_overwrites_previous;
          Alcotest.test_case "reset" `Quick test_swap_reset;
          Alcotest.test_case "current" `Quick test_swap_current;
          Alcotest.test_case "bad schedule" `Quick test_swap_bad_schedule;
          Alcotest.test_case "oversized blob" `Quick test_swap_oversized_blob;
          Alcotest.test_case "with_schedule" `Quick
            test_with_schedule_preserves_blobs;
          QCheck_alcotest.to_alcotest prop_schedule_multiset ] ) ]
