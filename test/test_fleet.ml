(* Tests for the fleet layer: the DVZF frame codec (roundtrip, partial
   reassembly, corruption rejection) and the coordinator/worker
   supervision loop (determinism vs the single-process engine,
   kill-and-respawn, graceful degradation to inline execution).

   Integration tests launch workers through the [fl_launch] fork seam
   rather than re-exec'ing a binary: the child runs [Worker.main] on its
   pipe ends and [Unix._exit]s, so it never returns into alcotest. *)

module Campaign = Dejavuzz.Campaign
module Cfg = Dvz_uarch.Config
module Proto = Dvz_fleet.Proto
module Coordinator = Dvz_fleet.Coordinator
module Worker = Dvz_fleet.Worker
module Wire = Dvz_fleet.Wire
module Telemetry = Dvz_fleet.Telemetry
module Metrics = Dvz_obs.Metrics
module Profile = Dvz_obs.Profile

let boom = Cfg.boom_small

(* --- frame codec --------------------------------------------------------- *)

let roundtrip msg =
  let r = Proto.reader () in
  Proto.feed_string r (Proto.encode msg);
  match Proto.next r with
  | Ok (Some m) ->
      Alcotest.(check int) "no leftover bytes" 0 (Proto.buffered r);
      m
  | Ok None -> Alcotest.fail "codec: complete frame not decoded"
  | Error e -> Alcotest.failf "codec: %s" (Proto.error_message e)

let arb_msg =
  let open QCheck in
  let nat = 0 -- 1_000_000 in
  let blob = string_of_size (Gen.int_bound 512) in
  let g =
    Gen.oneof
      [ Gen.map3
          (fun w p c ->
            Proto.Hello { h_worker = w; h_pid = p; h_clock_us = c })
          (gen nat) (gen nat) (gen nat);
        Gen.map (fun s -> Proto.Config { c_payload = s }) (gen blob);
        Gen.map2 (fun e s -> Proto.Assign { a_epoch = e; a_payload = s })
          (gen nat) (gen blob);
        Gen.map2 (fun w d -> Proto.Heartbeat { b_worker = w; b_done = d })
          (gen nat) (gen nat);
        Gen.map3
          (fun w (e, i) s ->
            Proto.Outcome
              { o_worker = w; o_epoch = e; o_iteration = i; o_payload = s })
          (gen nat)
          (Gen.pair (gen nat) (gen nat))
          (gen blob);
        Gen.map3
          (fun w i c ->
            Proto.Finding { f_worker = w; f_iteration = i; f_classes = c })
          (gen nat) (gen nat) (gen nat);
        Gen.map (fun i -> Proto.Checkpoint { k_iteration = i }) (gen nat);
        Gen.map2
          (fun w i -> Proto.Checkpoint_ack { k_worker = w; k_iteration = i })
          (gen nat) (gen nat);
        Gen.map3
          (fun w i s ->
            Proto.Telemetry { t_worker = w; t_incarnation = i; t_payload = s })
          (gen nat) (gen nat) (gen blob);
        Gen.return Proto.Shutdown ]
  in
  QCheck.make ~print:Proto.kind_name g

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"every frame kind roundtrips" arb_msg
    (fun msg -> roundtrip msg = msg)

let sample_msgs =
  [ Proto.Hello { h_worker = 3; h_pid = 4242; h_clock_us = 1_700_000_000 };
    Proto.Config { c_payload = "spec-bytes \x00\xff" };
    Proto.Assign { a_epoch = 7; a_payload = String.make 100 'p' };
    Proto.Heartbeat { b_worker = 1; b_done = 99 };
    Proto.Outcome
      { o_worker = 0; o_epoch = 2; o_iteration = 17; o_payload = "out" };
    Proto.Finding { f_worker = 1; f_iteration = 30; f_classes = 2 };
    Proto.Checkpoint { k_iteration = 16 };
    Proto.Checkpoint_ack { k_worker = 0; k_iteration = 16 };
    Proto.Telemetry { t_worker = 1; t_incarnation = 2; t_payload = "batch" };
    Proto.Shutdown ]

let drain r =
  let rec go acc =
    match Proto.next r with
    | Ok (Some m) -> go (m :: acc)
    | Ok None -> List.rev acc
    | Error e -> Alcotest.failf "drain: %s" (Proto.error_message e)
  in
  go []

let test_partial_reassembly () =
  let stream = String.concat "" (List.map Proto.encode sample_msgs) in
  List.iter
    (fun chunk ->
      let r = Proto.reader () in
      let got = ref [] in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        Proto.feed_string r (String.sub stream !i n);
        i := !i + n;
        got := !got @ drain r
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%d-byte feeds reassemble the stream" chunk)
        true
        (!got = sample_msgs);
      Alcotest.(check int) "stream fully consumed" 0 (Proto.buffered r))
    [ 1; 3; 7 ]

let expect_error name expected r =
  match Proto.next r with
  | Error e when e = expected -> ()
  | Error e ->
      Alcotest.failf "%s: expected %s, got %s" name
        (Proto.error_message expected)
        (Proto.error_message e)
  | Ok _ -> Alcotest.failf "%s: corrupt stream accepted" name

let test_garbage_rejected () =
  let r = Proto.reader () in
  Proto.feed_string r "this is not a DVZF frame at all, not even close";
  expect_error "garbage" Proto.Bad_magic r;
  (* A poisoned reader stays poisoned: there are no trustworthy frame
     boundaries left to resynchronise on. *)
  Proto.feed_string r (Proto.encode Proto.Shutdown);
  expect_error "poisoned after garbage" Proto.Bad_magic r

let patch_byte s off f =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (f (Char.code (Bytes.get b off))));
  Bytes.to_string b

let test_crc_mismatch_rejected () =
  let frame = Proto.encode (Proto.Config { c_payload = "payload-bytes" }) in
  (* Flip one payload bit; header (incl. stored CRC) untouched. *)
  let corrupt = patch_byte frame Proto.header_len (fun c -> c lxor 1) in
  let r = Proto.reader () in
  Proto.feed_string r corrupt;
  expect_error "flipped payload byte" Proto.Crc_mismatch r

let test_bad_version_and_kind_rejected () =
  let frame = Proto.encode (Proto.Heartbeat { b_worker = 0; b_done = 1 }) in
  let r = Proto.reader () in
  Proto.feed_string r (patch_byte frame 4 (fun v -> v + 1));
  expect_error "future version" (Proto.Bad_version (Proto.version + 1)) r;
  let r = Proto.reader () in
  Proto.feed_string r (patch_byte frame 5 (fun _ -> 250));
  expect_error "unknown kind" (Proto.Bad_kind 250) r

let test_oversized_rejected () =
  (* A header promising more than [max_payload] must be refused before
     any attempt to buffer it. *)
  let b = Bytes.make Proto.header_len '\000' in
  Bytes.blit_string "DVZF" 0 b 0 4;
  Bytes.set b 4 (Char.chr Proto.version);
  Bytes.set b 5 '\001';
  Bytes.set_int32_be b 6 (Int32.of_int (Proto.max_payload + 1));
  let r = Proto.reader () in
  Proto.feed_string r (Bytes.to_string b);
  expect_error "oversized" (Proto.Oversized (Proto.max_payload + 1)) r;
  (* And the encoder refuses to build such a frame in the first place. *)
  match
    Proto.encode (Proto.Config { c_payload = String.make (Proto.max_payload + 1) 'x' })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode accepted an oversized payload"

let test_trailing_payload_bytes_rejected () =
  (* A structurally valid frame whose payload has extra bytes after the
     last field is a framing bug, not data to ignore. *)
  let frame = Proto.encode (Proto.Checkpoint { k_iteration = 5 }) in
  let payload = String.sub frame Proto.header_len 8 ^ "extra" in
  let b = Bytes.make Proto.header_len '\000' in
  Bytes.blit_string "DVZF" 0 b 0 4;
  Bytes.set b 4 (Char.chr Proto.version);
  Bytes.set b 5 (String.get frame 5);
  Bytes.set_int32_be b 6 (Int32.of_int (String.length payload));
  Bytes.set_int32_be b 10
    (Int32.of_int (Dvz_resilience.Snapshot.crc32 payload));
  let r = Proto.reader () in
  Proto.feed_string r (Bytes.to_string b ^ payload);
  expect_error "trailing bytes" (Proto.Bad_payload "checkpoint") r

(* --- supervision --------------------------------------------------------- *)

(* Launch a worker by forking: the child serves [Worker.main] over fresh
   pipes and exits without ever returning to the test harness. *)
let fork_launch ~slot ~incarnation =
  let to_w_read, to_w_write = Unix.pipe ~cloexec:false () in
  let from_w_read, from_w_write = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close to_w_write;
      Unix.close from_w_read;
      (match
         Worker.main ~incarnation ~slot ~in_fd:to_w_read ~out_fd:from_w_write
           ()
       with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 2)
  | pid ->
      Unix.close to_w_read;
      Unix.close from_w_write;
      (pid, to_w_write, from_w_read)

let quiet_opts ~workers =
  { Coordinator.default_opts with
    Coordinator.fl_workers = workers;
    fl_heartbeat_s = 0.05;
    fl_deadline_s = 10.0;
    fl_backoff_base_s = 0.05;
    fl_backoff_cap_s = 0.2;
    fl_log = ignore;
    fl_launch = Some fork_launch }

let options =
  { Campaign.default_options with
    Campaign.iterations = 24; rng_seed = 9; batch = 6 }

let baseline_events options =
  let buf = Buffer.create 4096 in
  let telemetry =
    { Campaign.quiet with Campaign.t_events = Dvz_obs.Events.to_buffer buf }
  in
  let stats = Campaign.run ~telemetry ~jobs:1 boom options in
  (stats, Buffer.contents buf)

let fleet_events ?resilience opts options =
  let buf = Buffer.create 4096 in
  let telemetry =
    { Campaign.quiet with Campaign.t_events = Dvz_obs.Events.to_buffer buf }
  in
  let stats, fstats =
    Coordinator.run ~telemetry ?resilience opts boom options
  in
  (stats, fstats, Buffer.contents buf)

let strip_timing line =
  match Dvz_obs.Json.of_lines line with
  | Error e -> Alcotest.failf "unparseable event log: %s" e
  | Ok events ->
      List.map
        (function
          | Dvz_obs.Json.Obj fields ->
              Dvz_obs.Json.Obj
                (List.filter
                   (fun (k, _) ->
                     not
                       (List.mem k
                          [ "phase1_s"; "phase2_s"; "phase3_s"; "elapsed_s" ]))
                   fields)
          | ev -> ev)
        events

let check_matches_baseline name (stats, events) (fstats, fevents) =
  Alcotest.(check bool) (name ^ ": stats identical") true (stats = fstats);
  Alcotest.(check bool)
    (name ^ ": event streams identical modulo timing")
    true
    (strip_timing events = strip_timing fevents)

let test_fleet_matches_single_process () =
  let base = baseline_events options in
  let stats, fstats, events = fleet_events (quiet_opts ~workers:2) options in
  check_matches_baseline "fleet" base (stats, events);
  Alcotest.(check int) "both workers spawned" 2 fstats.Coordinator.fs_spawns;
  Alcotest.(check int) "no restarts" 0 fstats.Coordinator.fs_restarts

let test_fleet_survives_sigkill () =
  let base = baseline_events options in
  let opts =
    { (quiet_opts ~workers:2) with
      Coordinator.fl_chaos = [ (1, 1, Sys.sigkill) ] }
  in
  let stats, fstats, events = fleet_events opts options in
  check_matches_baseline "kill+respawn" base (stats, events);
  Alcotest.(check bool) "death was observed and respawn scheduled" true
    (fstats.Coordinator.fs_restarts >= 1)

let test_fleet_degrades_to_inline () =
  (* Kill both workers with no respawn budget: every slot retires and
     the coordinator must finish the campaign itself. *)
  let base = baseline_events options in
  let opts =
    { (quiet_opts ~workers:2) with
      Coordinator.fl_max_respawns = 0;
      fl_chaos = [ (0, 0, Sys.sigkill); (0, 1, Sys.sigkill) ] }
  in
  let stats, fstats, events = fleet_events opts options in
  check_matches_baseline "degraded" base (stats, events);
  Alcotest.(check int) "both slots retired" 2 fstats.Coordinator.fs_retired;
  Alcotest.(check bool) "coordinator picked up the slack" true
    (fstats.Coordinator.fs_inline_plans > 0)

let test_fleet_heartbeat_deadline () =
  (* SIGSTOP freezes a worker without closing its pipes: only the
     heartbeat deadline can catch it. *)
  let base = baseline_events options in
  let opts =
    { (quiet_opts ~workers:2) with
      Coordinator.fl_deadline_s = 0.4;
      fl_chaos = [ (0, 1, Sys.sigstop) ] }
  in
  let stats, fstats, events = fleet_events opts options in
  check_matches_baseline "frozen worker" base (stats, events);
  Alcotest.(check bool) "silence past the deadline was detected" true
    (fstats.Coordinator.fs_heartbeats_missed >= 1)

let test_fleet_zero_workers_runs_inline () =
  let base = baseline_events options in
  let stats, fstats, events = fleet_events (quiet_opts ~workers:0) options in
  check_matches_baseline "workers=0" base (stats, events);
  Alcotest.(check int) "everything ran inline" options.Campaign.iterations
    fstats.Coordinator.fs_inline_plans

let test_fleet_checkpoint_bytes_match () =
  let dir = Filename.temp_file "dvz_fleet" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let read_file p = In_channel.with_open_bin p In_channel.input_all in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let ck_a = Filename.concat dir "a.ck"
      and ck_b = Filename.concat dir "b.ck" in
      let rz path =
        { Campaign.no_resilience with
          Campaign.rz_checkpoint = Some path;
          rz_checkpoint_every = 12 }
      in
      let _ = Campaign.run ~resilience:(rz ck_a) ~jobs:1 boom options in
      let opts =
        { (quiet_opts ~workers:2) with
          Coordinator.fl_chaos = [ (1, 0, Sys.sigkill) ] }
      in
      let _ = fleet_events ~resilience:(rz ck_b) opts options in
      Alcotest.(check bool)
        "checkpoint bytes identical across fleet and single-process" true
        (read_file ck_a = read_file ck_b);
      Alcotest.(check bool) "fleet rotated a .prev checkpoint" true
        (Sys.file_exists (Dvz_resilience.Snapshot.previous_path ck_b)))

(* --- telemetry plane ----------------------------------------------------- *)

let sample_batch ?(seq = 1) ?(counter = ("dvz_test_iters_total", "", 7)) () =
  { Wire.tb_seq = seq;
    tb_metrics =
      { Metrics.empty_snapshot with Metrics.sn_counters = [ counter ] };
    tb_profile =
      [ { Profile.pf_path = "campaign/iteration";
          pf_name = "iteration";
          pf_depth = 1;
          pf_count = 3;
          pf_total_s = 0.9;
          pf_self_s = 0.6;
          pf_max_s = 0.5 } ];
    tb_trace = [];
    tb_trace_dropped = 0;
    tb_events = [ {|{"event":"assign","epoch":1}|} ];
    tb_events_dropped = 0 }

let counter_value snap name =
  match
    List.find_opt (fun (n, _, _) -> n = name) snap.Metrics.sn_counters
  with
  | Some (_, _, v) -> v
  | None -> 0

let test_telemetry_batch_roundtrip () =
  let b = sample_batch () in
  match Wire.telemetry_of_string (Wire.telemetry_to_string b) with
  | Error e -> Alcotest.failf "telemetry codec: %s" e
  | Ok b' -> Alcotest.(check bool) "batch roundtrips" true (b = b')

(* A worker SIGKILLed mid-flush leaves a prefix of a Telemetry frame in
   the pipe.  The truncated frame must never decode (so nothing partial
   reaches the plane), and a bit-flipped one must fail the CRC. *)
let test_partial_flush_rejected () =
  let frame =
    Proto.encode
      (Proto.Telemetry
         { t_worker = 0;
           t_incarnation = 0;
           t_payload = Wire.telemetry_to_string (sample_batch ()) })
  in
  (* Every strict prefix is silently incomplete, not a partial decode. *)
  List.iter
    (fun n ->
      let r = Proto.reader () in
      Proto.feed_string r (String.sub frame 0 n);
      match Proto.next r with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.failf "%d-byte prefix decoded a frame" n
      | Error e ->
          Alcotest.failf "%d-byte prefix errored: %s" n
            (Proto.error_message e))
    [ 1; Proto.header_len - 1; Proto.header_len; String.length frame - 1 ];
  let corrupt =
    patch_byte frame (Proto.header_len + 4) (fun c -> c lxor 0x10)
  in
  let r = Proto.reader () in
  Proto.feed_string r corrupt;
  expect_error "mid-flush corruption" Proto.Crc_mismatch r

(* The plane's aggregates survive a mid-flush death consistent: the lost
   flush was cumulative, so the previous batch plus the retirement fold
   still accounts for everything acked. *)
let test_lost_flush_keeps_aggregates_consistent () =
  let clock = Dvz_obs.Clock.fake () in
  let plane = Telemetry.create ~clock () in
  Telemetry.hello plane ~slot:0 ~incarnation:0 ~pid:100 ~clock_us:0;
  let b1 = sample_batch ~seq:1 ~counter:("dvz_test_iters_total", "", 7) () in
  Alcotest.(check bool) "first flush ingested" true
    (Telemetry.ingest plane ~slot:0 ~incarnation:0 b1);
  (* The second (cumulative) flush dies mid-write: the coordinator only
     ever sees the CRC-rejected prefix, then declares the worker dead. *)
  Telemetry.record_restart plane ~slot:0 ~reason:"sigkill mid-flush";
  let snap_after_death = List.assoc 0 (Telemetry.worker_metrics plane) in
  Alcotest.(check int) "retired aggregate keeps the last acked flush" 7
    (counter_value snap_after_death "dvz_test_iters_total");
  (* The respawned incarnation reports afresh; sums, no double count. *)
  Telemetry.hello plane ~slot:0 ~incarnation:1 ~pid:101 ~clock_us:0;
  let b2 = sample_batch ~seq:1 ~counter:("dvz_test_iters_total", "", 5) () in
  Alcotest.(check bool) "successor flush ingested" true
    (Telemetry.ingest plane ~slot:0 ~incarnation:1 b2);
  let snap = List.assoc 0 (Telemetry.worker_metrics plane) in
  Alcotest.(check int) "retired + live incarnations sum" 12
    (counter_value snap "dvz_test_iters_total")

let test_stale_incarnation_ignored () =
  let clock = Dvz_obs.Clock.fake () in
  let plane = Telemetry.create ~clock () in
  Telemetry.hello plane ~slot:1 ~incarnation:0 ~pid:100 ~clock_us:0;
  Alcotest.(check bool) "current incarnation accepted" true
    (Telemetry.ingest plane ~slot:1 ~incarnation:0 (sample_batch ()));
  Telemetry.record_restart plane ~slot:1 ~reason:"chaos";
  (* The dead generation's last flush was still in the pipe. *)
  Alcotest.(check bool) "stale incarnation dropped" false
    (Telemetry.ingest plane ~slot:1 ~incarnation:0 (sample_batch ~seq:2 ()));
  Alcotest.(check int) "stale frame counted" 1 (Telemetry.stale_frames plane);
  Telemetry.hello plane ~slot:1 ~incarnation:1 ~pid:101 ~clock_us:0;
  Alcotest.(check bool) "successor accepted" true
    (Telemetry.ingest plane ~slot:1 ~incarnation:1 (sample_batch ()));
  Alcotest.(check int) "no further stale frames" 1
    (Telemetry.stale_frames plane)

(* End-to-end: a real 2-worker fleet run with the plane attached yields
   ingested batches and merged worker profiles, and (the determinism
   contract) telemetry changes nothing about the campaign's output. *)
let test_fleet_telemetry_end_to_end () =
  let base = baseline_events options in
  let plane = Telemetry.create () in
  let opts =
    { (quiet_opts ~workers:2) with
      Coordinator.fl_profile = true;
      fl_trace = true }
  in
  let buf = Buffer.create 4096 in
  let telemetry =
    { Campaign.quiet with Campaign.t_events = Dvz_obs.Events.to_buffer buf }
  in
  let stats, _fstats = Coordinator.run ~telemetry ~plane opts boom options in
  check_matches_baseline "telemetry plane" base (stats, Buffer.contents buf);
  Alcotest.(check int) "no stale frames" 0 (Telemetry.stale_frames plane);
  let wm = Telemetry.worker_metrics plane in
  Alcotest.(check int) "both slots reported" 2 (List.length wm);
  List.iter
    (fun (slot, snap) ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d shipped at least one batch" slot)
        true
        (counter_value snap "dvz_fleet_telemetry_batches_total" >= 1))
    wm;
  Alcotest.(check bool) "worker profiles merged" true
    (Telemetry.merged_profile plane <> [])

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "dvz_fleet"
    [ ( "proto",
        [ qcheck prop_roundtrip;
          Alcotest.test_case "partial reassembly" `Quick
            test_partial_reassembly;
          Alcotest.test_case "garbage rejected, reader poisoned" `Quick
            test_garbage_rejected;
          Alcotest.test_case "crc mismatch rejected" `Quick
            test_crc_mismatch_rejected;
          Alcotest.test_case "bad version / kind rejected" `Quick
            test_bad_version_and_kind_rejected;
          Alcotest.test_case "oversized rejected" `Quick
            test_oversized_rejected;
          Alcotest.test_case "trailing payload bytes rejected" `Quick
            test_trailing_payload_bytes_rejected ] );
      ( "coordinator",
        [ Alcotest.test_case "fleet output equals --jobs 1" `Quick
            test_fleet_matches_single_process;
          Alcotest.test_case "sigkill mid-campaign survived" `Quick
            test_fleet_survives_sigkill;
          Alcotest.test_case "respawn budget exhausted degrades inline" `Quick
            test_fleet_degrades_to_inline;
          Alcotest.test_case "heartbeat deadline catches a frozen worker"
            `Quick test_fleet_heartbeat_deadline;
          Alcotest.test_case "zero workers runs inline" `Quick
            test_fleet_zero_workers_runs_inline;
          Alcotest.test_case "checkpoint bytes identical" `Quick
            test_fleet_checkpoint_bytes_match ] );
      ( "telemetry",
        [ Alcotest.test_case "batch codec roundtrips" `Quick
            test_telemetry_batch_roundtrip;
          Alcotest.test_case "partial flush rejected by framing/CRC" `Quick
            test_partial_flush_rejected;
          Alcotest.test_case "lost flush keeps aggregates consistent" `Quick
            test_lost_flush_keeps_aggregates_consistent;
          Alcotest.test_case "stale incarnation ignored" `Quick
            test_stale_incarnation_ignored;
          Alcotest.test_case "fleet run aggregates worker telemetry" `Quick
            test_fleet_telemetry_end_to_end ] ) ]
