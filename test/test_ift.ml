(* Tests for Dvz_ift: propagation policies, dual-DUT shadow co-simulation,
   the diffIFT/CellIFT distinction, liveness annotations, and taint logs. *)

open Dvz_ir
module N = Netlist
module Policy = Dvz_ift.Policy
module Shadow = Dvz_ift.Shadow
module Liveness = Dvz_ift.Liveness
module Taintlog = Dvz_ift.Taintlog
module Provenance = Dvz_ift.Provenance

(* --- policy unit tests --------------------------------------------------- *)

let test_and_policy () =
  (* Policy 1: O_and_t = (A & Bt) | (B & At) | (At & Bt) *)
  Alcotest.(check int) "zero masks taint" 0
    (Policy.and_taint ~a:0 ~b:1 ~at:0 ~bt:1);
  Alcotest.(check int) "one passes taint" 1
    (Policy.and_taint ~a:1 ~b:1 ~at:0 ~bt:1);
  Alcotest.(check int) "both tainted" 1
    (Policy.and_taint ~a:0 ~b:0 ~at:1 ~bt:1)

let test_or_policy () =
  Alcotest.(check int) "one masks taint" 0
    (Policy.or_taint ~a:1 ~b:0 ~at:0 ~bt:1);
  Alcotest.(check int) "zero passes taint" 1
    (Policy.or_taint ~a:0 ~b:0 ~at:0 ~bt:1)

let test_mux_policy_cellift () =
  (* tainted selector always propagates control taint under CellIFT *)
  let t =
    Policy.mux_taint Policy.Cellift ~width:8 ~s:0 ~s_diff:false ~a:0xAA ~b:0x55
      ~st:1 ~at:0 ~bt:0 ~ab_xor:0xFF
  in
  Alcotest.(check int) "cellift control taint" 0xFF t

let test_mux_policy_diffift_suppressed () =
  let t =
    Policy.mux_taint Policy.Diffift ~width:8 ~s:0 ~s_diff:false ~a:0xAA ~b:0x55
      ~st:1 ~at:0 ~bt:0 ~ab_xor:0xFF
  in
  Alcotest.(check int) "identical selectors suppress control taint" 0 t

let test_mux_policy_diffift_propagates () =
  let t =
    Policy.mux_taint Policy.Diffift ~width:8 ~s:0 ~s_diff:true ~a:0xAA ~b:0x55
      ~st:1 ~at:0 ~bt:0 ~ab_xor:0xFF
  in
  Alcotest.(check int) "differing selectors propagate" 0xFF t

let test_mux_policy_data () =
  let t =
    Policy.mux_taint Policy.Diffift ~width:8 ~s:1 ~s_diff:false ~a:0 ~b:0
      ~st:0 ~at:0x0F ~bt:0xF0 ~ab_xor:0
  in
  Alcotest.(check int) "selects B taint when s=1" 0xF0 t

(* Regression: [s] is a raw selector value; the old [s = 1] truthiness test
   made any other non-zero value (a multi-bit selector holding 2, say) take
   the A-arm taint while the value domain takes the B arm. *)
let test_mux_policy_nonzero_select () =
  let t =
    Policy.mux_taint Policy.Diffift ~width:8 ~s:2 ~s_diff:false ~a:0 ~b:0
      ~st:0 ~at:0x0F ~bt:0xF0 ~ab_xor:0
  in
  Alcotest.(check int) "any non-zero selector takes B taint" 0xF0 t

let test_cmp_policy () =
  Alcotest.(check int) "cellift taints on tainted input" 1
    (Policy.cmp_taint Policy.Cellift ~o_diff:false ~at:1 ~bt:0);
  Alcotest.(check int) "diffift needs output difference" 0
    (Policy.cmp_taint Policy.Diffift ~o_diff:false ~at:1 ~bt:0);
  Alcotest.(check int) "diffift taints on difference" 1
    (Policy.cmp_taint Policy.Diffift ~o_diff:true ~at:1 ~bt:0)

let test_arith_policy () =
  Alcotest.(check int) "carry spreads upward" 0b11111100
    (Policy.arith_taint ~width:8 ~at:0b100 ~bt:0);
  Alcotest.(check int) "clean stays clean" 0
    (Policy.arith_taint ~width:8 ~at:0 ~bt:0)

let test_reg_en_policy () =
  (* enable tainted, instances agree -> diffIFT keeps data-only semantics *)
  let t =
    Policy.reg_en_taint Policy.Diffift ~width:4 ~en:true ~en_diff:false ~ent:1
      ~dt:0 ~qt:0 ~dq_xor:0xF
  in
  Alcotest.(check int) "suppressed" 0 t;
  let t2 =
    Policy.reg_en_taint Policy.Cellift ~width:4 ~en:true ~en_diff:false ~ent:1
      ~dt:0 ~qt:0 ~dq_xor:0xF
  in
  Alcotest.(check int) "cellift propagates" 0xF t2

let test_mem_policies () =
  Alcotest.(check int) "read ctrl diffift gated" 0
    (Policy.mem_read_ctrl Policy.Diffift ~width:8 ~addrt:1 ~addr_diff:false);
  Alcotest.(check int) "read ctrl diffift fires" 0xFF
    (Policy.mem_read_ctrl Policy.Diffift ~width:8 ~addrt:1 ~addr_diff:true);
  Alcotest.(check int) "write ctrl cellift fires" 0xFF
    (Policy.mem_write_ctrl Policy.Cellift ~width:8 ~wen:true ~went:0
       ~wen_diff:false ~addrt:1 ~addr_diff:false)

(* --- shadow co-simulation ------------------------------------------------ *)

(* out = secret & mask: data taint flows through AND. *)
let test_shadow_data_taint () =
  let nl = N.create () in
  let secret = N.input nl 8 and mask = N.input nl 8 in
  let out = N.and_ nl secret mask in
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input_pair sh secret 0xAB 0x54;
  Shadow.set_input sh mask 0xFF;
  Shadow.eval sh;
  Alcotest.(check int) "instance A value" 0xAB (Shadow.peek_a sh out);
  Alcotest.(check int) "instance B value" 0x54 (Shadow.peek_b sh out);
  Alcotest.(check bool) "output tainted" true (Shadow.taint_of sh out <> 0)

let test_shadow_zero_mask_clears () =
  let nl = N.create () in
  let secret = N.input nl 8 and mask = N.input nl 8 in
  let out = N.and_ nl secret mask in
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input_pair sh secret 0xAB 0x54;
  Shadow.set_input sh mask 0x00;
  Shadow.eval sh;
  Alcotest.(check int) "zero mask stops taint" 0 (Shadow.taint_of sh out)

let test_shadow_register_taint () =
  let nl = N.create () in
  let d = N.input nl 8 in
  let q = N.reg nl 8 in
  N.reg_connect nl q ~d ();
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input_pair sh d 1 2;
  Shadow.cycle sh;
  Alcotest.(check bool) "register captured taint" true (Shadow.taint_of sh q <> 0);
  Shadow.set_input sh d 7;
  Shadow.cycle sh;
  Alcotest.(check int) "clean write clears register taint" 0 (Shadow.taint_of sh q)

let test_shadow_untainted_stays_clean () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  let sh = Shadow.create Policy.Diffift rob.Circuits.rob_nl in
  Shadow.set_input sh rob.Circuits.enq_valid 1;
  Shadow.set_input sh rob.Circuits.enq_uopc 0x3;
  Shadow.set_input sh rob.Circuits.rollback 0;
  Shadow.set_input sh rob.Circuits.rollback_idx 0;
  for _ = 1 to 8 do Shadow.cycle sh done;
  Alcotest.(check int) "no taint without tainted inputs" 0
    (Shadow.taint_bit_sum sh)

(* The Figure 2 over-tainting scenario. *)
let rollback_taints mode =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let sh = Shadow.create mode rob.Circuits.rob_nl in
  for i = 0 to 3 do
    Shadow.set_input sh rob.Circuits.enq_valid 1;
    Shadow.set_input sh rob.Circuits.enq_uopc (0x10 + i);
    Shadow.set_input sh rob.Circuits.rollback 0;
    Shadow.set_input sh rob.Circuits.rollback_idx 0;
    Shadow.cycle sh
  done;
  Shadow.set_input sh rob.Circuits.enq_valid 0;
  Shadow.set_input sh rob.Circuits.rollback 1;
  Shadow.set_input sh rob.Circuits.rollback_idx 1;
  Shadow.set_input_taint sh rob.Circuits.rollback_idx 0x7;
  Shadow.cycle sh;
  Shadow.set_input sh rob.Circuits.rollback 0;
  Shadow.set_input_taint sh rob.Circuits.rollback_idx 0;
  Shadow.set_input sh rob.Circuits.enq_valid 1;
  Shadow.set_input sh rob.Circuits.enq_uopc 0x55;
  Shadow.cycle sh;
  Array.fold_left
    (fun acc q -> if Shadow.taint_of sh q <> 0 then acc + 1 else acc)
    0 rob.Circuits.uopc

let test_cellift_overtaints_rollback () =
  Alcotest.(check int) "all entries tainted" 8 (rollback_taints Policy.Cellift)

let test_diffift_suppresses_rollback () =
  Alcotest.(check int) "no entry tainted" 0 (rollback_taints Policy.Diffift)

let test_diffift_divergent_selection_taints () =
  (* When the two instances genuinely select differently, diffIFT must
     propagate the control taint. *)
  let nl = N.create () in
  let sel = N.input nl 1 and a = N.input nl 8 and b = N.input nl 8 in
  let out = N.mux nl sel a b in
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input_pair sh sel 0 1;
  Shadow.set_input sh a 0x11;
  Shadow.set_input sh b 0x22;
  Shadow.eval sh;
  Alcotest.(check bool) "divergent mux taints output" true
    (Shadow.taint_of sh out <> 0)

let test_mem_taint_via_address () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  let addr = N.input nl 3 in
  let rdata = N.mem_read nl m addr in
  let sh = Shadow.create Policy.Diffift nl in
  (* secret-dependent address: the two instances read different words *)
  Shadow.set_input_pair sh addr 1 2;
  Shadow.eval sh;
  Alcotest.(check bool) "address-diff read is tainted" true
    (Shadow.taint_of sh rdata <> 0)

let test_mem_write_taint () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  let wen = N.input nl 1 and addr = N.input nl 3 and data = N.input nl 8 in
  N.mem_write nl m ~wen ~addr ~data;
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input sh wen 1;
  Shadow.set_input sh addr 5;
  Shadow.set_input_pair sh data 0xAA 0x55;
  Shadow.cycle sh;
  Alcotest.(check bool) "written word tainted" true (Shadow.mem_taint sh m 5 <> 0);
  Alcotest.(check int) "other word clean" 0 (Shadow.mem_taint sh m 4)

let test_tainted_by_module () =
  let nl = N.create () in
  let q =
    N.scoped nl "alpha" (fun () ->
        let d = N.input nl 4 in
        let q = N.reg nl 4 in
        N.reg_connect nl q ~d ();
        (d, q))
  in
  let d, q = q in
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input_pair sh d 1 2;
  Shadow.cycle sh;
  ignore q;
  let counts = Shadow.tainted_by_module sh in
  Alcotest.(check bool) "alpha has a tainted register" true
    (List.exists (fun (m, c) -> m = "alpha" && c = 1) counts)

let test_clear_taints () =
  let nl = N.create () in
  let d = N.input nl 4 in
  let q = N.reg nl 4 in
  N.reg_connect nl q ~d ();
  let sh = Shadow.create Policy.Diffift nl in
  Shadow.set_input_pair sh d 1 2;
  Shadow.cycle sh;
  Shadow.clear_taints sh;
  Alcotest.(check int) "all clear" 0 (Shadow.taint_bit_sum sh)

(* --- liveness ------------------------------------------------------------ *)

let test_liveness_lfb () =
  let lfb = Circuits.lfb ~entries:4 ~data_width:8 in
  let sh = Shadow.create Policy.Diffift lfb.Circuits.lfb_nl in
  let lv = Liveness.create sh in
  Liveness.bind_regs lv ~sinks:lfb.Circuits.data ~valid:lfb.Circuits.valid;
  Alcotest.(check int) "annotation count" 4 (Liveness.annotation_count lv);
  Shadow.set_input sh lfb.Circuits.retire 0;
  Shadow.set_input sh lfb.Circuits.retire_idx 0;
  Shadow.set_input sh lfb.Circuits.fill_valid 1;
  Shadow.set_input sh lfb.Circuits.fill_idx 2;
  Shadow.set_input_pair sh lfb.Circuits.fill_data 0xAA 0x55;
  Shadow.cycle sh;
  Shadow.eval sh;
  Alcotest.(check int) "live while valid" 1 (Liveness.live_tainted lv);
  Shadow.set_input sh lfb.Circuits.fill_valid 0;
  Shadow.set_input sh lfb.Circuits.retire 1;
  Shadow.set_input sh lfb.Circuits.retire_idx 2;
  Shadow.cycle sh;
  Shadow.eval sh;
  Alcotest.(check int) "dead after retire" 1 (Liveness.dead_tainted lv);
  Alcotest.(check int) "not live" 0 (Liveness.live_tainted lv)

let test_liveness_arity_check () =
  let lfb = Circuits.lfb ~entries:4 ~data_width:8 in
  let sh = Shadow.create Policy.Diffift lfb.Circuits.lfb_nl in
  let lv = Liveness.create sh in
  Alcotest.check_raises "arity"
    (Invalid_argument "Liveness.bind_regs: arity mismatch") (fun () ->
      Liveness.bind_regs lv ~sinks:lfb.Circuits.data
        ~valid:(Array.sub lfb.Circuits.valid 0 2))

(* --- taint log ----------------------------------------------------------- *)

let test_taintlog () =
  let nl = N.create () in
  let d = N.input nl 4 in
  let q = N.reg nl 4 in
  N.reg_connect nl q ~d ();
  let sh = Shadow.create Policy.Diffift nl in
  let log = Taintlog.create () in
  Taintlog.record log sh;
  Shadow.set_input_pair sh d 1 2;
  Shadow.cycle sh;
  Taintlog.record log sh;
  Alcotest.(check int) "length" 2 (Taintlog.length log);
  Alcotest.(check (list int)) "totals" [ 0; 4 ] (Taintlog.totals log);
  Alcotest.(check int) "max" 4 (Taintlog.max_total log);
  (match Taintlog.final log with
  | Some e -> Alcotest.(check int) "final tainted regs" 1 e.Taintlog.tainted_regs
  | None -> Alcotest.fail "expected final entry")

(* --- provenance ----------------------------------------------------------- *)

let test_provenance_record_and_slice () =
  let p = Provenance.create () in
  Provenance.set_context p ~time:(-1) ~in_window:false;
  Provenance.source p "mem[2560]";
  Provenance.set_context p ~time:5 ~in_window:true;
  Provenance.record p ~dst:"prf[3]" ~srcs:[ "mem[2560]" ] Provenance.Data;
  Provenance.record p ~dst:"dcache[7]" ~srcs:[ "prf[3]" ]
    (Provenance.Ctrl "addr");
  Alcotest.(check int) "edges" 3 (Provenance.num_edges p);
  let slice = Provenance.slice p ~sink:"dcache[7]" in
  Alcotest.(check (list string)) "slice chronological"
    [ "mem[2560]"; "prf[3]"; "dcache[7]" ]
    (List.map (fun e -> e.Provenance.e_dst) slice);
  Alcotest.(check bool) "window flags" true
    (match slice with
    | [ a; b; c ] ->
        (not a.Provenance.e_in_window)
        && b.Provenance.e_in_window && c.Provenance.e_in_window
    | _ -> false);
  Alcotest.(check (list string)) "unknown sink empty" []
    (List.map (fun e -> e.Provenance.e_dst)
       (Provenance.slice p ~sink:"nowhere"))

let test_provenance_epoch_selection () =
  (* A node tainted, cleared and re-tainted has two introduction edges; a
     slice through it must pick the one strictly before the consuming
     edge, not the global latest. *)
  let p = Provenance.create () in
  Provenance.source p "x";                                    (* e0 *)
  Provenance.record p ~dst:"y" ~srcs:[ "x" ] Provenance.Data; (* e1 *)
  Provenance.source p "x";                                    (* e2 *)
  Provenance.record p ~dst:"z" ~srcs:[ "x" ] Provenance.Data; (* e3 *)
  let ids sink =
    List.map (fun e -> e.Provenance.e_id) (Provenance.slice p ~sink)
  in
  Alcotest.(check (list int)) "y uses first epoch" [ 0; 1 ] (ids "y");
  Alcotest.(check (list int)) "z uses second epoch" [ 2; 3 ] (ids "z")

let test_provenance_restore_terminates () =
  (* Restore edges are self-referential (the node re-introduces its own
     pre-squash taint); the slice must not loop on them. *)
  let p = Provenance.create () in
  Provenance.source p "a";
  Provenance.record p ~dst:"a" ~srcs:[ "a" ] Provenance.Restore;
  let slice = Provenance.slice p ~sink:"a" in
  Alcotest.(check (list int)) "both epochs, no loop" [ 0; 1 ]
    (List.map (fun e -> e.Provenance.e_id) slice)

let test_provenance_cap () =
  let p = Provenance.create ~cap:2 () in
  Provenance.source p "a";
  Provenance.source p "b";
  Provenance.source p "c";
  Alcotest.(check int) "capped" 2 (Provenance.num_edges p);
  Alcotest.(check int) "dropped counted" 1 (Provenance.dropped p);
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Provenance.create: cap must be positive") (fun () ->
      ignore (Provenance.create ~cap:0 ()))

let test_provenance_kind_names () =
  let kinds =
    [ Provenance.Source; Provenance.Data; Provenance.Ctrl "addr";
      Provenance.Divergence; Provenance.Restore; Provenance.Cell "Mux" ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Provenance.kind_name k)
        true
        (Provenance.kind_of_name (Provenance.kind_name k) = Some k))
    kinds;
  Alcotest.(check bool) "unknown name" true
    (Provenance.kind_of_name "bogus" = None)

(* Arming a shadow must not change what gets tainted, only record how. *)
let test_shadow_armed_matches_disarmed () =
  let build () =
    let nl = N.create () in
    N.scoped nl "u" (fun () ->
        let sec = N.input nl ~name:"sec" 8 in
        let pub = N.input nl ~name:"pub" 8 in
        let x = N.xor_ nl sec pub in
        let q = N.reg nl ~name:"q" 8 in
        N.reg_connect nl q ~d:x ();
        (nl, sec, pub, q))
  in
  let nl_a, sec_a, pub_a, q_a = build () in
  let nl_b, sec_b, pub_b, q_b = build () in
  let p = Provenance.create () in
  let armed = Shadow.create ~provenance:p Policy.Diffift nl_a in
  let plain = Shadow.create Policy.Diffift nl_b in
  let drive sh sec pub =
    Shadow.set_input_pair sh sec 0xAB 0x54;
    Shadow.set_input sh pub 0x0F;
    Shadow.cycle sh;
    Shadow.eval sh
  in
  drive armed sec_a pub_a;
  drive plain sec_b pub_b;
  Alcotest.(check int) "taint planes agree" (Shadow.taint_bit_sum plain)
    (Shadow.taint_bit_sum armed);
  Alcotest.(check int) "values agree" (Shadow.peek_a plain q_b)
    (Shadow.peek_a armed q_a);
  let slice = Provenance.slice p ~sink:"u.q" in
  Alcotest.(check bool) "slice reaches the secret input" true
    (List.exists
       (fun e -> e.Provenance.e_kind = Provenance.Source
                 && e.Provenance.e_dst = "u.sec")
       slice);
  Alcotest.(check bool) "register intro is a cell edge" true
    (match List.rev slice with
    | last :: _ -> last.Provenance.e_dst = "u.q"
    | [] -> false)

let test_shadow_armed_mem_source () =
  let nl = N.create () in
  let m = N.mem nl ~name:"m" ~width:8 ~depth:8 () in
  let addr = N.input nl ~name:"addr" 3 in
  ignore (N.mem_read nl m addr);
  let p = Provenance.create () in
  let sh = Shadow.create ~provenance:p Policy.Diffift nl in
  Shadow.poke_mem_pair sh m 5 0xAA 0x55;
  Shadow.set_input sh addr 5;
  Shadow.eval sh;
  let label = Printf.sprintf "%s[5]" (N.mem_name m) in
  Alcotest.(check bool) "poke recorded as source" true
    (List.exists
       (fun e -> e.Provenance.e_kind = Provenance.Source
                 && e.Provenance.e_dst = label)
       (Provenance.edges p))

(* Disarmed, the provenance option must cost nothing: same engine, same
   outputs, no allocation in steady state (the armed path is interpretive
   and allocates; the fuzz loop never arms). *)
let test_disarmed_cycle_unchanged_and_allocation_free () =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let sh = Shadow.create Policy.Diffift rob.Circuits.rob_nl in
  Shadow.set_input sh rob.Circuits.enq_valid 1;
  Shadow.set_input_pair sh rob.Circuits.enq_uopc 0x11 0x22;
  Shadow.set_input sh rob.Circuits.rollback 0;
  Shadow.set_input sh rob.Circuits.rollback_idx 0;
  for _ = 1 to 100 do Shadow.cycle sh done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do Shadow.cycle sh done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "disarmed cycles allocated %.0f minor words" delta)
    true (delta < 64.0);
  Alcotest.(check int) "ticks counted" 1100 (Shadow.ticks sh)

(* --- taint log bounds ------------------------------------------------------ *)

let bound_cycles bound n =
  let nl = N.create () in
  let d = N.input nl 4 in
  let q = N.reg nl 4 in
  N.reg_connect nl q ~d ();
  let sh = Shadow.create Policy.Diffift nl in
  let log = Taintlog.create ~bound () in
  for _ = 1 to n do
    Shadow.set_input_pair sh d 1 2;
    Shadow.cycle sh;
    Taintlog.record log sh
  done;
  log

let cycles_of log = List.map (fun e -> e.Taintlog.cycle) (Taintlog.entries log)

let test_taintlog_keep_first () =
  let log = bound_cycles (Taintlog.Keep_first 2) 5 in
  Alcotest.(check (list int)) "first two" [ 0; 1 ] (cycles_of log);
  Alcotest.(check int) "length counts all" 5 (Taintlog.length log)

let test_taintlog_keep_last () =
  let log = bound_cycles (Taintlog.Keep_last 2) 5 in
  Alcotest.(check (list int)) "last two" [ 3; 4 ] (cycles_of log);
  Alcotest.(check int) "length counts all" 5 (Taintlog.length log);
  Alcotest.(check int) "totals trimmed too" 2
    (List.length (Taintlog.totals log));
  (match Taintlog.final log with
  | Some e -> Alcotest.(check int) "final is newest" 4 e.Taintlog.cycle
  | None -> Alcotest.fail "expected final entry")

let test_taintlog_stride () =
  let log = bound_cycles (Taintlog.Stride 2) 5 in
  Alcotest.(check (list int)) "every other cycle" [ 0; 2; 4 ] (cycles_of log);
  Alcotest.(check int) "max_total over retained" 4 (Taintlog.max_total log)

let test_taintlog_bound_validation () =
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Taintlog.create: bound must be positive") (fun () ->
      ignore (Taintlog.create ~bound:(Taintlog.Keep_last 0) ()))

(* --- compiled vs interpretive engine -------------------------------------- *)

(* The compiled shadow engine must be bit-identical to the interpreter in
   both policy modes: both value planes, the whole taint plane, the memory
   taints and the aggregate counters.  The RoB circuit plus a memory covers
   every opcode class the engine lowers. *)
let shadow_engine_differential mode () =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let nl = rob.Circuits.rob_nl in
  let m, wen, waddr, wdata, raddr =
    N.scoped nl "prf" (fun () ->
        let m = N.mem nl ~name:"regfile" ~width:8 ~depth:8 () in
        let wen = N.input nl ~name:"wen" 1 in
        let waddr = N.input nl ~name:"waddr" 4 in
        let wdata = N.input nl ~name:"wdata" 8 in
        N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
        let raddr = N.input nl ~name:"raddr" 4 in
        ignore (N.mem_read nl m raddr);
        (m, wen, waddr, wdata, raddr))
  in
  let c = Shadow.create mode nl in
  let i = Shadow.create ~engine:`Interp mode nl in
  Alcotest.(check bool) "engines recorded" true
    (Shadow.engine c = `Compiled && Shadow.engine i = `Interp);
  let rng = Dvz_util.Rng.create 4242 in
  for cycle = 1 to 60 do
    let both f = f c; f i in
    let enq = Dvz_util.Rng.int rng 2 in
    let uopc_a = Dvz_util.Rng.int rng 128 in
    let uopc_b = Dvz_util.Rng.int rng 128 in
    let rb = Dvz_util.Rng.int rng 2 in
    let rbi_a = Dvz_util.Rng.int rng 8 in
    let rbi_b = Dvz_util.Rng.int rng 8 in
    let we = Dvz_util.Rng.int rng 2 in
    let wa = Dvz_util.Rng.int rng 16 (* can exceed depth: bounds paths *) in
    let wd_a = Dvz_util.Rng.int rng 256 in
    let wd_b = Dvz_util.Rng.int rng 256 in
    let ra = Dvz_util.Rng.int rng 16 in
    both (fun sh ->
        Shadow.set_input sh rob.Circuits.enq_valid enq;
        Shadow.set_input_pair sh rob.Circuits.enq_uopc uopc_a uopc_b;
        Shadow.set_input sh rob.Circuits.rollback rb;
        Shadow.set_input_pair sh rob.Circuits.rollback_idx rbi_a rbi_b;
        Shadow.set_input sh wen we;
        Shadow.set_input sh waddr wa;
        Shadow.set_input_pair sh wdata wd_a wd_b;
        Shadow.set_input sh raddr ra;
        Shadow.cycle sh);
    for k = 0 to N.num_signals nl - 1 do
      let s = N.signal_of_int nl k in
      if
        Shadow.peek_a c s <> Shadow.peek_a i s
        || Shadow.peek_b c s <> Shadow.peek_b i s
        || Shadow.taint_of c s <> Shadow.taint_of i s
      then
        Alcotest.failf "cycle %d: signal #%d diverges between engines" cycle k
    done;
    for w = 0 to N.mem_depth m - 1 do
      if Shadow.mem_taint c m w <> Shadow.mem_taint i m w then
        Alcotest.failf "cycle %d: memory word %d taint diverges" cycle w
    done;
    Alcotest.(check int) "taint_bit_sum agrees" (Shadow.taint_bit_sum i)
      (Shadow.taint_bit_sum c);
    Alcotest.(check int) "tainted_registers agrees"
      (Shadow.tainted_registers i) (Shadow.tainted_registers c)
  done

(* The compiled shadow cycle is allocation-free too: all Policy calls are
   int-in/int-out. *)
let test_shadow_compiled_cycle_allocation_free () =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let sh = Shadow.create Policy.Diffift rob.Circuits.rob_nl in
  Shadow.set_input sh rob.Circuits.enq_valid 1;
  Shadow.set_input_pair sh rob.Circuits.enq_uopc 0x11 0x22;
  Shadow.set_input sh rob.Circuits.rollback 0;
  Shadow.set_input sh rob.Circuits.rollback_idx 0;
  for _ = 1 to 100 do Shadow.cycle sh done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do Shadow.cycle sh done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "1000 compiled shadow cycles allocated %.0f minor words"
       delta)
    true (delta < 64.0)

(* The optimization passes must preserve taints bit-for-bit, not just
   values: same DUT as the engine differential, optimized shadow vs plain
   shadow, compared on named signals (values A/B and taint), registers and
   memory taint.  Dead unnamed cells are excluded by construction — the
   optimized engine reads them as 0. *)
let shadow_opt_differential mode () =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let nl = rob.Circuits.rob_nl in
  let m, wen, waddr, wdata, raddr =
    N.scoped nl "prf" (fun () ->
        let m = N.mem nl ~name:"regfile" ~width:8 ~depth:8 () in
        let wen = N.input nl ~name:"wen" 1 in
        let waddr = N.input nl ~name:"waddr" 4 in
        let wdata = N.input nl ~name:"wdata" 8 in
        N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
        let raddr = N.input nl ~name:"raddr" 4 in
        ignore (N.mem_read nl m raddr);
        (m, wen, waddr, wdata, raddr))
  in
  let plain = Shadow.create mode nl in
  let opt = Shadow.create ~opt:true mode nl in
  let rng = Dvz_util.Rng.create 777 in
  for cycle = 1 to 60 do
    let both f = f plain; f opt in
    let enq = Dvz_util.Rng.int rng 2 in
    let uopc_a = Dvz_util.Rng.int rng 128 in
    let uopc_b = Dvz_util.Rng.int rng 128 in
    let rb = Dvz_util.Rng.int rng 2 in
    let rbi_a = Dvz_util.Rng.int rng 8 in
    let rbi_b = Dvz_util.Rng.int rng 8 in
    let we = Dvz_util.Rng.int rng 2 in
    let wa = Dvz_util.Rng.int rng 16 in
    let wd_a = Dvz_util.Rng.int rng 256 in
    let wd_b = Dvz_util.Rng.int rng 256 in
    let wt = Dvz_util.Rng.int rng 256 in
    let ra = Dvz_util.Rng.int rng 16 in
    both (fun sh ->
        Shadow.set_input sh rob.Circuits.enq_valid enq;
        Shadow.set_input_pair sh rob.Circuits.enq_uopc uopc_a uopc_b;
        Shadow.set_input sh rob.Circuits.rollback rb;
        Shadow.set_input_pair sh rob.Circuits.rollback_idx rbi_a rbi_b;
        Shadow.set_input sh wen we;
        Shadow.set_input sh waddr wa;
        Shadow.set_input_pair sh wdata wd_a wd_b;
        Shadow.set_input_taint sh wdata wt;
        Shadow.set_input sh raddr ra;
        Shadow.cycle sh);
    for k = 0 to N.num_signals nl - 1 do
      let s = N.signal_of_int nl k in
      if
        N.name_of nl s <> ""
        && (Shadow.peek_a plain s <> Shadow.peek_a opt s
           || Shadow.peek_b plain s <> Shadow.peek_b opt s
           || Shadow.taint_of plain s <> Shadow.taint_of opt s)
      then
        Alcotest.failf "cycle %d: named signal #%d diverges under optimization"
          cycle k
    done;
    for w = 0 to N.mem_depth m - 1 do
      if Shadow.mem_taint plain m w <> Shadow.mem_taint opt m w then
        Alcotest.failf "cycle %d: memory word %d taint diverges" cycle w
    done;
    Alcotest.(check int) "tainted_registers agrees"
      (Shadow.tainted_registers plain)
      (Shadow.tainted_registers opt)
  done

(* Shadow lanes pinned to the scalar shadow: per lane, every signal's A/B
   values and taint, every memory word's taint, every tick — both modes. *)
let shadow_lanes_differential mode () =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let nl = rob.Circuits.rob_nl in
  let m, wen, waddr, wdata =
    N.scoped nl "prf" (fun () ->
        let m = N.mem nl ~name:"regfile" ~width:8 ~depth:8 () in
        let wen = N.input nl ~name:"wen" 1 in
        let waddr = N.input nl ~name:"waddr" 4 in
        let wdata = N.input nl ~name:"wdata" 8 in
        N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
        (m, wen, waddr, wdata))
  in
  let k = 3 in
  let lanes = Shadow.Lanes.create ~k mode nl in
  let scalars = Array.init k (fun _ -> Shadow.create mode nl) in
  let rng = Dvz_util.Rng.create 909 in
  for cycle = 1 to 40 do
    for l = 0 to k - 1 do
      let sh = scalars.(l) in
      let enq = Dvz_util.Rng.int rng 2 in
      let uopc_a = Dvz_util.Rng.int rng 128 in
      let uopc_b = Dvz_util.Rng.int rng 128 in
      let rb = Dvz_util.Rng.int rng 2 in
      let rbi = Dvz_util.Rng.int rng 8 in
      let we = Dvz_util.Rng.int rng 2 in
      let wa = Dvz_util.Rng.int rng 16 in
      let wd_a = Dvz_util.Rng.int rng 256 in
      let wd_b = Dvz_util.Rng.int rng 256 in
      let wt = Dvz_util.Rng.int rng 256 in
      Shadow.set_input sh rob.Circuits.enq_valid enq;
      Shadow.Lanes.set_input lanes ~lane:l rob.Circuits.enq_valid enq;
      Shadow.set_input_pair sh rob.Circuits.enq_uopc uopc_a uopc_b;
      Shadow.Lanes.set_input_pair lanes ~lane:l rob.Circuits.enq_uopc uopc_a
        uopc_b;
      Shadow.set_input sh rob.Circuits.rollback rb;
      Shadow.Lanes.set_input lanes ~lane:l rob.Circuits.rollback rb;
      Shadow.set_input sh rob.Circuits.rollback_idx rbi;
      Shadow.Lanes.set_input lanes ~lane:l rob.Circuits.rollback_idx rbi;
      Shadow.set_input sh wen we;
      Shadow.Lanes.set_input lanes ~lane:l wen we;
      Shadow.set_input sh waddr wa;
      Shadow.Lanes.set_input lanes ~lane:l waddr wa;
      Shadow.set_input_pair sh wdata wd_a wd_b;
      Shadow.Lanes.set_input_pair lanes ~lane:l wdata wd_a wd_b;
      Shadow.set_input_taint sh wdata wt;
      Shadow.Lanes.set_input_taint lanes ~lane:l wdata wt
    done;
    Shadow.Lanes.cycle lanes;
    Array.iter Shadow.cycle scalars;
    for l = 0 to k - 1 do
      for i = 0 to N.num_signals nl - 1 do
        let s = N.signal_of_int nl i in
        if
          Shadow.Lanes.peek_a lanes ~lane:l s <> Shadow.peek_a scalars.(l) s
          || Shadow.Lanes.peek_b lanes ~lane:l s <> Shadow.peek_b scalars.(l) s
          || Shadow.Lanes.taint_of lanes ~lane:l s
             <> Shadow.taint_of scalars.(l) s
        then
          Alcotest.failf "cycle %d lane %d: signal #%d diverges from scalar"
            cycle l i
      done;
      for w = 0 to N.mem_depth m - 1 do
        if
          Shadow.Lanes.mem_taint lanes ~lane:l m w
          <> Shadow.mem_taint scalars.(l) m w
        then
          Alcotest.failf "cycle %d lane %d: memory word %d taint diverges"
            cycle l w
      done
    done
  done;
  Alcotest.(check int) "ticks agree" (Shadow.ticks scalars.(0))
    (Shadow.Lanes.ticks lanes)

(* Correctness guard for [dejavuzz explain]: a provenance-armed shadow
   ignores [?opt] (optimization would restructure the unnamed intermediate
   hops a slice reports), so slices are identical with the flag set. *)
let test_provenance_ignores_opt () =
  let build () =
    let nl = N.create () in
    N.scoped nl "u" (fun () ->
        let sec = N.input nl ~name:"sec" 8 in
        let pub = N.input nl ~name:"pub" 8 in
        let x = N.xor_ nl sec pub in
        let q = N.reg nl ~name:"q" 8 in
        N.reg_connect nl q ~d:x ();
        (nl, sec, pub))
  in
  let slice_of ~opt =
    let nl, sec, pub = build () in
    let p = Provenance.create () in
    let sh = Shadow.create ~provenance:p ~opt Policy.Diffift nl in
    Shadow.set_input_pair sh sec 0xAA 0x55;
    Shadow.set_input_taint sh sec 0xFF;
    Shadow.set_input sh pub 0x0F;
    Shadow.cycle sh;
    List.map Provenance.render_edge (Provenance.slice p ~sink:"u.q")
  in
  let plain = slice_of ~opt:false and opted = slice_of ~opt:true in
  Alcotest.(check bool) "slices non-empty" true (plain <> []);
  Alcotest.(check bool) "identical slices with opt requested" true
    (plain = opted)

(* --- properties ---------------------------------------------------------- *)

(* diffIFT taints are a subset of CellIFT taints on random circuits. *)
let prop_diffift_subset_cellift =
  QCheck.Test.make ~name:"diffIFT taint set under-approximates CellIFT"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Dvz_util.Rng.create seed in
      let nl = N.create () in
      let secret = N.input nl 8 in
      let pub = Array.init 2 (fun _ -> N.input nl 8) in
      let pool = ref (secret :: Array.to_list pub) in
      let pick () = Dvz_util.Rng.choose_list rng !pool in
      let sel = N.input nl 1 in
      for _ = 1 to 15 do
        let a = pick () and b = pick () in
        let s =
          match Dvz_util.Rng.int rng 6 with
          | 0 -> N.and_ nl a b
          | 1 -> N.or_ nl a b
          | 2 -> N.xor_ nl a b
          | 3 -> N.add nl a b
          | 4 -> N.mux nl sel a b
          | _ -> N.not_ nl a
        in
        pool := s :: !pool
      done;
      let regs =
        List.map
          (fun d ->
            let q = N.reg nl 8 in
            N.reg_connect nl q ~d ();
            q)
          (List.filteri (fun i _ -> i < 4) !pool)
      in
      let drive sh =
        let r = Dvz_util.Rng.create (seed * 31) in
        for _ = 1 to 10 do
          Shadow.set_input_pair sh secret
            (Dvz_util.Rng.int r 256) (Dvz_util.Rng.int r 256);
          Array.iter
            (fun p -> Shadow.set_input sh p (Dvz_util.Rng.int r 256))
            pub;
          Shadow.set_input sh sel (Dvz_util.Rng.int r 2);
          Shadow.cycle sh
        done
      in
      let cell = Shadow.create Policy.Cellift nl in
      let diff = Shadow.create Policy.Diffift nl in
      drive cell;
      drive diff;
      List.for_all
        (fun q ->
          (* every diffIFT-tainted bit is CellIFT-tainted *)
          Shadow.taint_of diff q land lnot (Shadow.taint_of cell q) = 0)
        regs)

(* No tainted inputs => no taints anywhere, either mode. *)
let prop_no_source_no_taint =
  QCheck.Test.make ~name:"zero secret taint yields zero propagated taint"
    ~count:30 QCheck.small_int (fun seed ->
      let rob = Circuits.rob ~entries:4 ~uopc_width:5 in
      let modes = [ Policy.Cellift; Policy.Diffift ] in
      List.for_all
        (fun mode ->
          let sh = Shadow.create mode rob.Circuits.rob_nl in
          let rng = Dvz_util.Rng.create seed in
          for _ = 1 to 12 do
            Shadow.set_input sh rob.Circuits.enq_valid (Dvz_util.Rng.int rng 2);
            Shadow.set_input sh rob.Circuits.enq_uopc (Dvz_util.Rng.int rng 32);
            Shadow.set_input sh rob.Circuits.rollback (Dvz_util.Rng.int rng 2);
            Shadow.set_input sh rob.Circuits.rollback_idx (Dvz_util.Rng.int rng 4);
            Shadow.cycle sh
          done;
          Shadow.taint_bit_sum sh = 0)
        modes)

let () =
  Alcotest.run "dvz_ift"
    [ ( "policies",
        [ Alcotest.test_case "and" `Quick test_and_policy;
          Alcotest.test_case "or" `Quick test_or_policy;
          Alcotest.test_case "mux cellift" `Quick test_mux_policy_cellift;
          Alcotest.test_case "mux diffift suppressed" `Quick
            test_mux_policy_diffift_suppressed;
          Alcotest.test_case "mux diffift propagates" `Quick
            test_mux_policy_diffift_propagates;
          Alcotest.test_case "mux data" `Quick test_mux_policy_data;
          Alcotest.test_case "mux non-zero select" `Quick
            test_mux_policy_nonzero_select;
          Alcotest.test_case "comparison" `Quick test_cmp_policy;
          Alcotest.test_case "arithmetic" `Quick test_arith_policy;
          Alcotest.test_case "register enable" `Quick test_reg_en_policy;
          Alcotest.test_case "memories" `Quick test_mem_policies ] );
      ( "shadow",
        [ Alcotest.test_case "data taint" `Quick test_shadow_data_taint;
          Alcotest.test_case "zero mask clears" `Quick test_shadow_zero_mask_clears;
          Alcotest.test_case "register taint" `Quick test_shadow_register_taint;
          Alcotest.test_case "clean run stays clean" `Quick
            test_shadow_untainted_stays_clean;
          Alcotest.test_case "cellift rollback over-taint" `Quick
            test_cellift_overtaints_rollback;
          Alcotest.test_case "diffift rollback suppression" `Quick
            test_diffift_suppresses_rollback;
          Alcotest.test_case "divergent mux taints" `Quick
            test_diffift_divergent_selection_taints;
          Alcotest.test_case "memory read taint" `Quick test_mem_taint_via_address;
          Alcotest.test_case "memory write taint" `Quick test_mem_write_taint;
          Alcotest.test_case "per-module counts" `Quick test_tainted_by_module;
          Alcotest.test_case "clear" `Quick test_clear_taints;
          QCheck_alcotest.to_alcotest prop_diffift_subset_cellift;
          QCheck_alcotest.to_alcotest prop_no_source_no_taint ] );
      ( "engine",
        [ Alcotest.test_case "cellift differential" `Quick
            (shadow_engine_differential Policy.Cellift);
          Alcotest.test_case "diffift differential" `Quick
            (shadow_engine_differential Policy.Diffift);
          Alcotest.test_case "compiled cycle allocation-free" `Quick
            test_shadow_compiled_cycle_allocation_free;
          Alcotest.test_case "cellift optimized differential" `Quick
            (shadow_opt_differential Policy.Cellift);
          Alcotest.test_case "diffift optimized differential" `Quick
            (shadow_opt_differential Policy.Diffift);
          Alcotest.test_case "cellift lanes differential" `Quick
            (shadow_lanes_differential Policy.Cellift);
          Alcotest.test_case "diffift lanes differential" `Quick
            (shadow_lanes_differential Policy.Diffift) ] );
      ( "liveness",
        [ Alcotest.test_case "lfb decoy" `Quick test_liveness_lfb;
          Alcotest.test_case "arity check" `Quick test_liveness_arity_check ] );
      ( "taintlog",
        [ Alcotest.test_case "record" `Quick test_taintlog;
          Alcotest.test_case "keep-first bound" `Quick test_taintlog_keep_first;
          Alcotest.test_case "keep-last bound" `Quick test_taintlog_keep_last;
          Alcotest.test_case "stride bound" `Quick test_taintlog_stride;
          Alcotest.test_case "bound validation" `Quick
            test_taintlog_bound_validation ] );
      ( "provenance",
        [ Alcotest.test_case "record and slice" `Quick
            test_provenance_record_and_slice;
          Alcotest.test_case "epoch selection" `Quick
            test_provenance_epoch_selection;
          Alcotest.test_case "restore terminates" `Quick
            test_provenance_restore_terminates;
          Alcotest.test_case "capacity" `Quick test_provenance_cap;
          Alcotest.test_case "kind names" `Quick test_provenance_kind_names;
          Alcotest.test_case "armed matches disarmed" `Quick
            test_shadow_armed_matches_disarmed;
          Alcotest.test_case "memory poke source" `Quick
            test_shadow_armed_mem_source;
          Alcotest.test_case "disarmed zero overhead" `Quick
            test_disarmed_cycle_unchanged_and_allocation_free;
          Alcotest.test_case "armed shadow ignores opt" `Quick
            test_provenance_ignores_opt ] ) ]
