(* Tests for Dvz_uarch: predictors, caches, TLB, LSU queues, the core
   model's transient-window behaviour, each planted bug, the taint engine,
   and the dual-DUT testbench. *)

open Dvz_isa
open Dvz_soc
module P = Dvz_uarch.Predictors
module Cache = Dvz_uarch.Cache
module Tlb = Dvz_uarch.Tlb
module Lsu = Dvz_uarch.Lsu
module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Elem = Dvz_uarch.Elem
module Eff = Dvz_uarch.Effect
module Taintstate = Dvz_uarch.Taintstate
module Dualcore = Dvz_uarch.Dualcore
module Packet = Dejavuzz.Packet
module Genlib = Dejavuzz.Genlib

(* --- predictors ---------------------------------------------------------- *)

let test_bht_saturation () =
  let bht = P.Bht.create ~entries:16 in
  Alcotest.(check bool) "default weakly untaken" false
    (P.Bht.predict_taken bht ~pc:0x1000);
  ignore (P.Bht.update bht ~pc:0x1000 ~taken:true);
  Alcotest.(check bool) "one taken trains" true
    (P.Bht.predict_taken bht ~pc:0x1000);
  for _ = 1 to 5 do ignore (P.Bht.update bht ~pc:0x1000 ~taken:true) done;
  ignore (P.Bht.update bht ~pc:0x1000 ~taken:false);
  Alcotest.(check bool) "saturated survives one untaken" true
    (P.Bht.predict_taken bht ~pc:0x1000)

let test_bht_aliasing () =
  let bht = P.Bht.create ~entries:16 in
  ignore (P.Bht.update bht ~pc:0x1000 ~taken:true);
  (* 16 entries * 4 bytes = aliasing stride of 64 bytes *)
  Alcotest.(check bool) "aliased pc shares counter" true
    (P.Bht.predict_taken bht ~pc:(0x1000 + 64))

let test_btb_tagged_vs_untagged () =
  let tagged = P.Btb.create ~tagged:true ~entries:8 () in
  let untagged = P.Btb.create ~tagged:false ~entries:8 () in
  ignore (P.Btb.update tagged ~pc:0x1000 ~target:0x2000);
  ignore (P.Btb.update untagged ~pc:0x1000 ~target:0x2000);
  let alias = 0x1000 + (8 * 4) in
  Alcotest.(check bool) "tagged rejects alias" true
    (P.Btb.lookup tagged ~pc:alias = None);
  Alcotest.(check bool) "untagged hits alias" true
    (P.Btb.lookup untagged ~pc:alias = Some 0x2000);
  Alcotest.(check bool) "exact hit both" true
    (P.Btb.lookup tagged ~pc:0x1000 = Some 0x2000)

let test_ras_push_pop () =
  let ras = P.Ras.create ~entries:4 in
  Alcotest.(check bool) "empty pops nothing" true (P.Ras.pop ras = None);
  ignore (P.Ras.push ras 0x100);
  ignore (P.Ras.push ras 0x200);
  Alcotest.(check int) "depth" 2 (P.Ras.depth ras);
  (match P.Ras.pop ras with
  | Some (a, _) -> Alcotest.(check int) "LIFO" 0x200 a
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "peek" true (P.Ras.peek ras = Some 0x100)

let test_ras_restore_full () =
  let ras = P.Ras.create ~entries:4 in
  ignore (P.Ras.push ras 0x100);
  ignore (P.Ras.push ras 0x200);
  let snap = P.Ras.snapshot ras in
  ignore (P.Ras.pop ras);
  ignore (P.Ras.push ras 0xBAD);
  ignore (P.Ras.push ras 0xBAD2);
  P.Ras.restore_full ras snap;
  Alcotest.(check bool) "top restored" true (P.Ras.peek ras = Some 0x200);
  (match P.Ras.pop ras with
  | Some _ -> ()
  | None -> Alcotest.fail "pop");
  Alcotest.(check bool) "deep entry restored" true (P.Ras.peek ras = Some 0x100)

let test_ras_restore_top_only_bug () =
  (* B2's mechanism: entries below the TOS keep transient overwrites. *)
  let ras = P.Ras.create ~entries:4 in
  ignore (P.Ras.push ras 0x100);
  ignore (P.Ras.push ras 0x200);
  let snap = P.Ras.snapshot ras in
  (* transient execution: pop twice (down to empty), push two corruptions *)
  ignore (P.Ras.pop ras);
  ignore (P.Ras.pop ras);
  ignore (P.Ras.push ras 0xBAD1);
  ignore (P.Ras.push ras 0xBAD2);
  P.Ras.restore_top_only ras snap;
  Alcotest.(check bool) "top entry repaired" true (P.Ras.peek ras = Some 0x200);
  ignore (P.Ras.pop ras);
  (* the deeper entry was overwritten transiently and never repaired *)
  Alcotest.(check bool) "below-TOS entry corrupted" true
    (P.Ras.peek ras <> Some 0x100)

let test_ras_liveness () =
  let ras = P.Ras.create ~entries:4 in
  let s1 = P.Ras.push ras 0x100 in
  let s2 = P.Ras.push ras 0x200 in
  Alcotest.(check bool) "pushed slots live" true
    (P.Ras.live ras s1 && P.Ras.live ras s2);
  ignore (P.Ras.pop ras);
  Alcotest.(check bool) "popped slot dead" false (P.Ras.live ras s2)

let test_loop_predictor () =
  let loop = P.Loop.create ~entries:8 in
  Alcotest.(check bool) "enabled" true (P.Loop.enabled loop);
  (match P.Loop.update loop ~pc:0x1000 ~taken:true with
  | Some i ->
      ignore (P.Loop.update loop ~pc:0x1000 ~taken:true);
      Alcotest.(check int) "streak" 2 (P.Loop.streak loop i);
      ignore (P.Loop.update loop ~pc:0x1000 ~taken:false);
      Alcotest.(check int) "reset" 0 (P.Loop.streak loop i)
  | None -> Alcotest.fail "expected update");
  let disabled = P.Loop.create ~entries:0 in
  Alcotest.(check bool) "disabled" false (P.Loop.enabled disabled);
  Alcotest.(check bool) "disabled update" true
    (P.Loop.update disabled ~pc:0 ~taken:true = None)

let test_mdp () =
  let mdp = P.Mdp.create ~entries:16 in
  Alcotest.(check bool) "optimistic default" false
    (P.Mdp.predicts_alias mdp ~pc:0x1000);
  ignore (P.Mdp.train_alias mdp ~pc:0x1000);
  Alcotest.(check bool) "trained" true (P.Mdp.predicts_alias mdp ~pc:0x1000)

(* --- caches / TLB -------------------------------------------------------- *)

let test_cache_fill_and_hit () =
  let c = Cache.create ~lines:8 ~line_bytes:64 in
  (match Cache.access c ~addr:0x1000 with
  | `Miss i ->
      Alcotest.(check bool) "line valid after fill" true (Cache.valid c i);
      Alcotest.(check int) "line addr" 0x1000 (Cache.line_addr c i)
  | `Hit _ -> Alcotest.fail "cold access must miss");
  match Cache.access c ~addr:0x1008 with
  | `Hit _ -> ()
  | `Miss _ -> Alcotest.fail "same line must hit"

let test_cache_conflict () =
  let c = Cache.create ~lines:8 ~line_bytes:64 in
  ignore (Cache.access c ~addr:0x0);
  ignore (Cache.access c ~addr:(8 * 64));
  match Cache.access c ~addr:0x0 with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "conflicting line must have evicted"

let test_cache_flush () =
  let c = Cache.create ~lines:8 ~line_bytes:64 in
  ignore (Cache.access c ~addr:0x1000);
  Cache.invalidate_all c;
  match Cache.access c ~addr:0x1000 with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "flush must clear"

let test_lfb_decoy () =
  let lfb = Cache.Lfb.create ~entries:4 in
  let s = Cache.Lfb.refill lfb ~data:0x5EC2E7 in
  Alcotest.(check int) "data parked" 0x5EC2E7 (Cache.Lfb.data lfb s);
  Alcotest.(check bool) "MSHR already invalid" false (Cache.Lfb.valid lfb s);
  let s2 = Cache.Lfb.refill lfb ~data:1 in
  Alcotest.(check bool) "round robin" true (s2 <> s)

let test_tlb () =
  let t = Tlb.create ~entries:8 ~page_bytes:4096 in
  (match Tlb.access t ~addr:0x5000 with
  | `Miss i -> Alcotest.(check bool) "filled" true (Tlb.valid t i)
  | _ -> Alcotest.fail "cold miss expected");
  (match Tlb.access t ~addr:0x5800 with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "same page hits");
  let disabled = Tlb.create ~entries:0 ~page_bytes:4096 in
  Alcotest.(check bool) "disabled" true (Tlb.access disabled ~addr:0 = `Disabled)

(* --- LSU queues ---------------------------------------------------------- *)

let test_stq_forwarding () =
  let stq = Lsu.Stq.create ~entries:4 in
  ignore (Lsu.Stq.alloc stq ~addr:0x100 ~size:8 ~data:42 ~resolve_at:0 ());
  (match Lsu.Stq.forward stq ~now:5 ~addr:0x100 ~size:8 with
  | Some (_, v) -> Alcotest.(check int) "forwarded" 42 v
  | None -> Alcotest.fail "expected forward");
  Alcotest.(check bool) "size mismatch no forward" true
    (Lsu.Stq.forward stq ~now:5 ~addr:0x100 ~size:4 = None)

let test_stq_pending_alias () =
  let stq = Lsu.Stq.create ~entries:4 in
  ignore
    (Lsu.Stq.alloc stq ~addr:0x100 ~size:8 ~data:42 ~old_data:7 ~resolve_at:10 ());
  (match Lsu.Stq.pending_alias stq ~now:5 ~addr:0x104 ~size:4 with
  | Some (_, old) -> Alcotest.(check int) "stale value" 7 old
  | None -> Alcotest.fail "overlap expected");
  Alcotest.(check bool) "resolved store no longer pending" true
    (Lsu.Stq.pending_alias stq ~now:20 ~addr:0x100 ~size:8 = None)

let test_stq_youngest_wins () =
  let stq = Lsu.Stq.create ~entries:4 in
  ignore (Lsu.Stq.alloc stq ~addr:0x100 ~size:8 ~data:1 ~resolve_at:0 ());
  ignore (Lsu.Stq.alloc stq ~addr:0x100 ~size:8 ~data:2 ~resolve_at:0 ());
  match Lsu.Stq.forward stq ~now:5 ~addr:0x100 ~size:8 with
  | Some (_, v) -> Alcotest.(check int) "youngest" 2 v
  | None -> Alcotest.fail "forward"

let test_stq_snapshot_restore () =
  let stq = Lsu.Stq.create ~entries:4 in
  ignore (Lsu.Stq.alloc stq ~addr:0x100 ~size:8 ~data:1 ~resolve_at:0 ());
  let snap = Lsu.Stq.snapshot stq in
  ignore (Lsu.Stq.alloc stq ~addr:0x200 ~size:8 ~data:2 ~resolve_at:0 ());
  Lsu.Stq.restore stq snap;
  Alcotest.(check bool) "speculative entry dropped" true
    (Lsu.Stq.forward stq ~now:5 ~addr:0x200 ~size:8 = None);
  Alcotest.(check bool) "committed entry kept" true
    (Lsu.Stq.forward stq ~now:5 ~addr:0x100 ~size:8 <> None)

let test_ldq_basic () =
  let ldq = Lsu.Ldq.create ~entries:4 in
  let s = Lsu.Ldq.alloc ldq ~addr:0x100 in
  Alcotest.(check bool) "valid" true (Lsu.Ldq.valid ldq s);
  let snap = Lsu.Ldq.snapshot ldq in
  let s2 = Lsu.Ldq.alloc ldq ~addr:0x200 in
  Lsu.Ldq.restore ldq snap;
  Alcotest.(check bool) "restored" false (s2 <> s && Lsu.Ldq.valid ldq s2 && s2 > s)

(* --- core: stimulus helpers ---------------------------------------------- *)

let secret = Array.make Layout.secret_dwords 0x7E57

let stim_of_insns ?(tighten = false) ?(data = []) ?(perms = []) insns =
  let blob =
    { Swapmem.name = "t"; words = Array.of_list (List.map Encode.encode insns);
      is_transient = true }
  in
  { Core.st_swapmem = Swapmem.create ~blobs:[ blob ] ~schedule:[ 0 ];
    st_tighten_secret = tighten; st_secret = secret; st_data = data;
    st_perms = perms; st_max_slots = 2000 }

let run_core ?(cfg = Cfg.boom_small) stim =
  let core = Core.create cfg stim in
  ignore (Core.run core);
  core

let test_core_runs_linear_code () =
  let core =
    run_core
      (stim_of_insns
         [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1);
           Insn.Opi (Insn.Addi, Reg.t0, Reg.t0, 1); Insn.Ebreak ])
  in
  Alcotest.(check bool) "done" true (Core.is_done core);
  Alcotest.(check int) "3 committed" 3 (Core.committed core);
  Alcotest.(check bool) "no windows" true (Core.windows core = [])

let test_core_exception_window () =
  (* A faulting load opens a transient window over its successors. *)
  let insns =
    Genlib.li Reg.t0 0xE000
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0);
        Insn.Opi (Insn.Addi, Reg.t2, Reg.zero, 1); Insn.Ebreak ]
  in
  let core =
    run_core (stim_of_insns ~perms:[ (0xE000, Perm.absent) ] insns)
  in
  match Core.windows core with
  | [ w ] ->
      Alcotest.(check bool) "page-fault kind" true
        (w.Core.wr_kind = Eff.W_exception Trap.Load_page_fault);
      Alcotest.(check bool) "enqueued transients" true (w.Core.wr_enqueued > 0)
  | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws)

let test_core_boom_no_illegal_window () =
  let insns = [ Insn.Illegal 0xFFFFFFFF; Insn.Ebreak ] in
  let boom = run_core ~cfg:Cfg.boom_small (stim_of_insns insns) in
  Alcotest.(check bool) "BOOM: no window" true (Core.windows boom = []);
  let xs = run_core ~cfg:Cfg.xiangshan_minimal (stim_of_insns insns) in
  Alcotest.(check int) "XiangShan: window" 1 (List.length (Core.windows xs))

let test_core_branch_needs_training () =
  (* untrained: weakly-untaken prediction matches an untaken branch *)
  let insns =
    [ Insn.Branch (Insn.Ne, Reg.zero, Reg.zero, 8); Insn.Ebreak; Insn.Ebreak ]
  in
  let core = run_core (stim_of_insns insns) in
  Alcotest.(check bool) "no window untrained" true (Core.windows core = [])

let test_core_branch_window_after_training () =
  (* two blobs: training teaches taken; the transient blob's branch is
     architecturally untaken -> misprediction window *)
  let train =
    [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1);
      Insn.Branch (Insn.Ne, Reg.t0, Reg.zero, 8); Insn.Ebreak; Insn.Ebreak ]
  in
  let transient =
    [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 0);
      Insn.Branch (Insn.Ne, Reg.t0, Reg.zero, 8); Insn.Ebreak; Insn.Ebreak ]
  in
  let mk name insns is_transient =
    { Swapmem.name; words = Array.of_list (List.map Encode.encode insns);
      is_transient }
  in
  let stim =
    { Core.st_swapmem =
        Swapmem.create
          ~blobs:[ mk "train" train false; mk "tr" transient true ]
          ~schedule:[ 0; 1 ];
      st_tighten_secret = false; st_secret = secret; st_data = [];
      st_perms = []; st_max_slots = 2000 }
  in
  let core = run_core stim in
  let windows =
    List.filter (fun w -> w.Core.wr_in_transient_blob) (Core.windows core)
  in
  match windows with
  | [ w ] ->
      Alcotest.(check bool) "branch mispred" true
        (w.Core.wr_kind = Eff.W_branch_mispred)
  | ws -> Alcotest.failf "expected 1 transient-blob window, got %d" (List.length ws)

let test_core_return_window () =
  (* a call pushes the RAS; pointing ra elsewhere makes the ret mispredict *)
  let insns =
    [ Insn.Jal (Reg.ra, 4);                    (* push 0x1004 *)
      Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1);
      (* overwrite ra with the ebreak's address, so the RAS stale entry
         (0x1004) disagrees with the actual target *)
    ]
    @ Genlib.li Reg.ra (Layout.swap_base + (4 * 6))
    @ [ Insn.Jalr (Reg.zero, Reg.ra, 0); Insn.Ebreak ]
  in
  let core = run_core (stim_of_insns insns) in
  match List.filter (fun w -> w.Core.wr_kind = Eff.W_return_mispred)
          (Core.windows core) with
  | [ _ ] -> ()
  | ws -> Alcotest.failf "expected 1 return window, got %d" (List.length ws)

let test_core_disamb_window_and_stale_value () =
  let x = Layout.dedicated_base + 0x80 in
  let insns =
    Genlib.li Reg.t0 x
    @ Genlib.li Reg.t1 0x42
    @ [ Insn.Store (Insn.D, Reg.t1, Reg.t0, 0);
        Insn.Load (Insn.D, false, Reg.t2, Reg.t0, 0); Insn.Ebreak ]
  in
  let core = run_core (stim_of_insns ~data:[ (x, 0x99) ] insns) in
  (match List.filter (fun w -> w.Core.wr_kind = Eff.W_mem_disamb)
           (Core.windows core) with
  | [ _ ] -> ()
  | ws -> Alcotest.failf "expected 1 disamb window, got %d" (List.length ws));
  (* second run on the same pc would be MDP-trained; fresh core required *)
  Alcotest.(check bool) "done" true (Core.is_done core)

let test_core_window_bounded () =
  let cfg = Cfg.boom_small in
  let insns =
    Genlib.li Reg.t0 0xE000
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0) ]
    @ List.init 40 (fun _ -> Insn.nop)
  in
  let core =
    run_core ~cfg (stim_of_insns ~perms:[ (0xE000, Perm.absent) ] insns)
  in
  match Core.windows core with
  | [ w ] ->
      Alcotest.(check int) "window bounded by config"
        cfg.Cfg.window_insns w.Core.wr_enqueued
  | _ -> Alcotest.fail "expected 1 window"

let test_core_transient_stores_dont_commit () =
  (* a store in the shadow of a faulting load must not reach memory *)
  let x = Layout.dedicated_base + 0x100 in
  let insns =
    Genlib.li Reg.t0 0xE000
    @ Genlib.li Reg.t1 x
    @ Genlib.li Reg.t2 0xBAD
    @ [ Insn.Load (Insn.D, false, Reg.a0, Reg.t0, 0);  (* faults: window *)
        Insn.Store (Insn.D, Reg.t2, Reg.t1, 0);        (* transient *)
        Insn.Ebreak ]
  in
  let core =
    run_core (stim_of_insns ~perms:[ (0xE000, Perm.absent) ] insns)
  in
  Alcotest.(check int) "memory unchanged" 0
    (Phys_mem.read (Core.mem core) ~addr:x ~size:8)

let test_core_meltdown_forwarding_b1 () =
  (* B1 on XiangShan: an out-of-physical-range alias of the secret address
     is sampled by the load unit despite the access fault. *)
  let cfg = Cfg.xiangshan_minimal in
  let insns =
    Genlib.li_high Reg.t0 ~tmp:Reg.t2 ~low:Layout.secret_base ~shift:40
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let core = run_core ~cfg (stim_of_insns insns) in
  match Core.windows core with
  | w :: _ ->
      Alcotest.(check bool) "secret sampled" true w.Core.wr_secret_accessed;
      Alcotest.(check bool) "privilege bypass" true w.Core.wr_secret_fault
  | [] -> Alcotest.fail "expected a window"

let test_core_no_b1_on_boom () =
  let cfg = Cfg.boom_small in
  let insns =
    Genlib.li_high Reg.t0 ~tmp:Reg.t2 ~low:Layout.secret_base ~shift:40
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let core = run_core ~cfg (stim_of_insns insns) in
  match Core.windows core with
  | w :: _ ->
      Alcotest.(check bool) "no sampling without the bug" false
        w.Core.wr_secret_accessed
  | [] -> Alcotest.fail "expected a window"

let test_core_tighten_secret () =
  (* with tightening, the transient blob's secret load faults *)
  let insns =
    Genlib.li Reg.t0 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let core = run_core (stim_of_insns ~tighten:true insns) in
  match Core.windows core with
  | w :: _ ->
      Alcotest.(check bool) "meltdown-style fault" true w.Core.wr_secret_fault
  | [] -> Alcotest.fail "expected exception window"

let test_core_state_hash_secret_sensitivity () =
  let insns =
    Genlib.li Reg.t0 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let run secret_val =
    let s = stim_of_insns insns in
    let s = { s with Core.st_secret = Array.make Layout.secret_dwords secret_val } in
    Core.state_hash (run_core s)
  in
  (* loading the secret into the cache leaves its value in reach of the
     hash: SpecDoctor's oracle flags exactly this *)
  Alcotest.(check bool) "hash is secret sensitive" true (run 1 <> run 2)

(* --- taint engine -------------------------------------------------------- *)

let slot ?(pc = 0) events =
  { Eff.sl_pc = pc; sl_insn = Insn.nop; sl_transient = false;
    sl_window_opened = None; sl_window_closed = false; sl_events = events;
    sl_cycles = 0; sl_committed = true; sl_swapped = false }

let test_taint_write_propagation () =
  let t = Taintstate.create Dvz_ift.Policy.Diffift in
  Taintstate.set_tainted t (Elem.Mem 1);
  let s = slot [ Eff.Write (Elem.Areg 5, [ Elem.Mem 1 ]) ] in
  Taintstate.apply_pair t (Some s) (Some s);
  Alcotest.(check bool) "propagated" true (Taintstate.is_tainted t (Elem.Areg 5));
  let s2 = slot [ Eff.Write (Elem.Areg 5, []) ] in
  Taintstate.apply_pair t (Some s2) (Some s2);
  Alcotest.(check bool) "clean overwrite clears (diffIFT)" false
    (Taintstate.is_tainted t (Elem.Areg 5))

let test_taint_cellift_monotone () =
  let t = Taintstate.create Dvz_ift.Policy.Cellift in
  Taintstate.set_tainted t (Elem.Mem 1);
  let s = slot [ Eff.Write (Elem.Areg 5, [ Elem.Mem 1 ]) ] in
  Taintstate.apply_pair t (Some s) (Some s);
  let s2 = slot [ Eff.Write (Elem.Areg 5, []) ] in
  Taintstate.apply_pair t (Some s2) (Some s2);
  Alcotest.(check bool) "cellift taints only accumulate" true
    (Taintstate.is_tainted t (Elem.Areg 5))

let test_taint_ctrl_gating () =
  let mk value =
    slot
      [ Eff.Ctrl { kind = Eff.C_addr; value; srcs = [ Elem.Mem 1 ];
                   touched = [ Elem.Dcache 3 ] } ]
  in
  (* same decision in both instances: diffIFT suppresses *)
  let t = Taintstate.create Dvz_ift.Policy.Diffift in
  Taintstate.set_tainted t (Elem.Mem 1);
  Taintstate.apply_pair t (Some (mk 7)) (Some (mk 7));
  Alcotest.(check bool) "suppressed" false (Taintstate.is_tainted t (Elem.Dcache 3));
  (* differing decisions: propagate *)
  Taintstate.apply_pair t (Some (mk 7)) (Some (mk 9));
  Alcotest.(check bool) "propagated" true (Taintstate.is_tainted t (Elem.Dcache 3));
  (* cellift propagates even when equal *)
  let tc = Taintstate.create Dvz_ift.Policy.Cellift in
  Taintstate.set_tainted tc (Elem.Mem 1);
  Taintstate.apply_pair tc (Some (mk 7)) (Some (mk 7));
  Alcotest.(check bool) "cellift ungated" true
    (Taintstate.is_tainted tc (Elem.Dcache 3))

let test_taint_ctrl_untainted_sources () =
  let mk value =
    slot
      [ Eff.Ctrl { kind = Eff.C_addr; value; srcs = [ Elem.Mem 1 ];
                   touched = [ Elem.Dcache 3 ] } ]
  in
  let t = Taintstate.create Dvz_ift.Policy.Diffift in
  (* sources untainted: even differing decisions must not taint *)
  Taintstate.apply_pair t (Some (mk 1)) (Some (mk 2));
  Alcotest.(check bool) "untainted sources never taint" false
    (Taintstate.is_tainted t (Elem.Dcache 3))

let test_taint_divergence () =
  let t = Taintstate.create Dvz_ift.Policy.Diffift in
  Taintstate.set_tainted t (Elem.Mem 1);
  let sa = slot ~pc:0x1000 [ Eff.Write (Elem.Sreg 3, []) ] in
  let sb = slot ~pc:0x2000 [ Eff.Write (Elem.Sreg 3, []) ] in
  Taintstate.apply_pair t (Some sa) (Some sb);
  Alcotest.(check bool) "divergent slots control-taint writes" true
    (Taintstate.is_tainted t (Elem.Sreg 3))

let test_taint_copy_and_restore () =
  let t = Taintstate.create Dvz_ift.Policy.Diffift in
  Taintstate.set_tainted t (Elem.Areg 4);
  let s = slot [ Eff.Copy_regs_to_spec ] in
  Taintstate.apply_pair t (Some s) (Some s);
  Alcotest.(check bool) "spec copy inherits" true
    (Taintstate.is_tainted t (Elem.Sreg 4));
  (* snapshot, taint, restore *)
  let snap = slot [ Eff.Snapshot [ Elem.Ras 1 ] ] in
  Taintstate.apply_pair t (Some snap) (Some snap);
  Taintstate.set_tainted t (Elem.Ras 1);
  let rest = slot [ Eff.Restore [ Elem.Ras 1 ] ] in
  Taintstate.apply_pair t (Some rest) (Some rest);
  Alcotest.(check bool) "restore clears transient taint" false
    (Taintstate.is_tainted t (Elem.Ras 1))

let test_taint_module_counts () =
  let t = Taintstate.create Dvz_ift.Policy.Diffift in
  Taintstate.set_tainted t (Elem.Dcache 0);
  Taintstate.set_tainted t (Elem.Dcache 4);
  Taintstate.set_tainted t (Elem.Ras 0);
  let counts = Taintstate.tainted_by_module t in
  Alcotest.(check bool) "dcache bank count 2" true
    (List.assoc_opt "lsu.dcache.bank0" counts = Some 2);
  Alcotest.(check bool) "ras count 1" true
    (List.assoc_opt "frontend.ras" counts = Some 1)

(* --- dual core ----------------------------------------------------------- *)

let test_dualcore_secret_flows () =
  let insns =
    Genlib.li Reg.t0 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let dc = Dualcore.create Cfg.boom_small (stim_of_insns insns) in
  let r = Dualcore.run dc in
  Alcotest.(check bool) "register tainted" true
    (List.exists (fun e -> e = Elem.Areg (Reg.to_int Reg.t1)) r.Dualcore.r_final_tainted)

let test_dualcore_no_secret_no_taint_growth () =
  let insns =
    [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 3);
      Insn.Op (Insn.Add, Reg.t1, Reg.t0, Reg.t0); Insn.Ebreak ]
  in
  let dc = Dualcore.create Cfg.boom_small (stim_of_insns insns) in
  let r = Dualcore.run dc in
  (* only the pre-tainted secret words remain *)
  Alcotest.(check int) "only secret dwords tainted" Layout.secret_dwords
    (List.length r.Dualcore.r_final_tainted)

let test_dualcore_fn_mode_suppresses_control () =
  (* same secret in both instances: secret-indexed cache line stays clean *)
  let insns =
    Genlib.li Reg.t0 Layout.secret_base
    @ Genlib.li Reg.a3 Layout.probe_base
    @ [ Insn.Load (Insn.D, false, Reg.s0, Reg.t0, 0);
        Insn.Opi (Insn.Andi, Reg.t1, Reg.s0, 1);
        Insn.Opi (Insn.Slli, Reg.t1, Reg.t1, 6);
        Insn.Op (Insn.Add, Reg.t1, Reg.t1, Reg.a3);
        Insn.Load (Insn.D, false, Reg.t2, Reg.t1, 0);
        Insn.Ebreak ]
  in
  let count_dcache secret_b =
    let dc = Dualcore.create ~secret_b Cfg.boom_small (stim_of_insns insns) in
    let r = Dualcore.run dc in
    List.length
      (List.filter
         (fun e -> match e with Elem.Dcache _ -> true | _ -> false)
         r.Dualcore.r_final_tainted)
  in
  let diff_count = count_dcache (Array.map (fun v -> v lxor 1) secret) in
  let fn_count = count_dcache secret in
  Alcotest.(check bool) "differing secrets taint the probe line" true
    (diff_count > fn_count)

let test_dualcore_timing_identical_without_secret_paths () =
  let insns =
    [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 3); Insn.Ebreak ]
  in
  let dc = Dualcore.create Cfg.boom_small (stim_of_insns insns) in
  let r = Dualcore.run dc in
  Alcotest.(check int) "same cycles" r.Dualcore.r_cycles_a r.Dualcore.r_cycles_b;
  Alcotest.(check bool) "no timing diffs" true
    (Dualcore.window_timing_diffs r = [])

let test_core_liveness_views () =
  let core = run_core (stim_of_insns [ Insn.Ebreak ]) in
  Alcotest.(check bool) "arch regs live" true (Core.live core (Elem.Areg 1));
  Alcotest.(check bool) "spec regs dead" false (Core.live core (Elem.Sreg 1));
  Alcotest.(check bool) "rob dead" false (Core.live core (Elem.Rob 0));
  Alcotest.(check bool) "mem live" true (Core.live core (Elem.Mem 0))

(* --- timing side channels -------------------------------------------------- *)

let test_fpu_contention_timing () =
  (* A secret-gated fdiv inside an exception window: the two instances'
     window durations must differ (Spectre-Rewind / the fpu component). *)
  let insns =
    Genlib.li Reg.t0 0xE000
    @ Genlib.li Reg.s1 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); (* window opens *)
        Insn.Load (Insn.D, false, Reg.s0, Reg.s1, 0); (* secret *)
        Insn.Opi (Insn.Andi, Reg.t2, Reg.s0, 1);
        Insn.Branch (Insn.Eq, Reg.t2, Reg.zero, 8);
        Insn.Fdiv (Reg.t2, Reg.t0, Reg.t1);
        Insn.Ebreak ]
  in
  let stim = stim_of_insns ~perms:[ (0xE000, Perm.absent) ] insns in
  (* secrets 0 vs bitwise-not: bit 0 differs, so exactly one instance runs
     the divide *)
  let dc = Dualcore.create Cfg.boom_small stim in
  let r = Dualcore.run dc in
  Alcotest.(check bool) "window timing differs" true
    (Dualcore.window_timing_diffs r <> [])

let test_no_timing_diff_without_secret_control () =
  (* The same window shape but with the divide unconditional: identical
     timing in both instances. *)
  let insns =
    Genlib.li Reg.t0 0xE000
    @ Genlib.li Reg.s1 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0);
        Insn.Load (Insn.D, false, Reg.s0, Reg.s1, 0);
        Insn.Fdiv (Reg.t2, Reg.t0, Reg.t1);
        Insn.Ebreak ]
  in
  let stim = stim_of_insns ~perms:[ (0xE000, Perm.absent) ] insns in
  let dc = Dualcore.create Cfg.boom_small stim in
  let r = Dualcore.run dc in
  Alcotest.(check bool) "constant time" true
    (Dualcore.window_timing_diffs r = [])

(* --- sequencing edge cases -------------------------------------------------- *)

let test_ecall_also_terminates_sequence () =
  let mk name insns =
    { Swapmem.name; words = Array.of_list (List.map Encode.encode insns);
      is_transient = false }
  in
  let stim =
    { Core.st_swapmem =
        Swapmem.create
          ~blobs:
            [ mk "a" [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, 1); Insn.Ecall ];
              mk "b" [ Insn.Opi (Insn.Addi, Reg.t1, Reg.zero, 2); Insn.Ebreak ] ]
          ~schedule:[ 0; 1 ];
      st_tighten_secret = false; st_secret = secret; st_data = [];
      st_perms = []; st_max_slots = 100 }
  in
  let core = run_core stim in
  Alcotest.(check int) "both blobs executed" 2 (Core.arch_reg core Reg.t1)

let test_max_slots_bounds_runaway () =
  (* a tight infinite loop must stop at the slot budget *)
  let insns = [ Insn.Jal (Reg.zero, 0) ] in
  let stim = { (stim_of_insns insns) with Core.st_max_slots = 50 } in
  let core = run_core stim in
  Alcotest.(check bool) "terminates" true (Core.is_done core);
  Alcotest.(check bool) "stopped at budget" true (Core.slot_count core <= 51)

let test_training_blob_windows_flagged () =
  let mk name insns is_transient =
    { Swapmem.name; words = Array.of_list (List.map Encode.encode insns);
      is_transient }
  in
  (* the "training" blob itself faults -> its window is not in the
     transient blob *)
  let faulting =
    Genlib.li Reg.t0 0xE000
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let stim =
    { Core.st_swapmem =
        Swapmem.create
          ~blobs:[ mk "train" faulting false; mk "tr" [ Insn.Ebreak ] true ]
          ~schedule:[ 0; 1 ];
      st_tighten_secret = false; st_secret = secret; st_data = [];
      st_perms = [ (0xE000, Perm.absent) ]; st_max_slots = 500 }
  in
  let core = run_core stim in
  match Core.windows core with
  | [ w ] ->
      Alcotest.(check bool) "flagged as training-time" false
        w.Core.wr_in_transient_blob
  | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws)

let test_state_hash_deterministic () =
  let insns =
    Genlib.li Reg.t0 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let run () = Core.state_hash (run_core (stim_of_insns insns)) in
  Alcotest.(check int) "hash stable across runs" (run ()) (run ())

let test_dualcore_deterministic () =
  let insns =
    Genlib.li Reg.t0 Layout.secret_base
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ]
  in
  let run () =
    let r = Dualcore.run (Dualcore.create Cfg.boom_small (stim_of_insns insns)) in
    (r.Dualcore.r_cycles_a, r.Dualcore.r_final_tainted)
  in
  Alcotest.(check bool) "same result" true (run () = run ())

(* --- co-simulation: speculation is architecturally invisible -------------- *)

(* Random linear programs (forward control flow only, accesses confined to
   the dedicated region) executed on the speculative core must leave the
   same architectural register state as the pure golden model. *)
let random_linear_program rng =
  let module R = Dvz_util.Rng in
  let n = R.int_in rng 15 40 in
  let body = ref [] in
  let emit i = body := i :: !body in
  List.iter emit (Genlib.li Reg.t0 (Layout.dedicated_base + 0x100));
  for _ = 1 to n do
    match R.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        emit
          (Genlib.random_arith rng
             ~dst:(R.choose rng Genlib.scratch)
             ~srcs:[ R.choose rng Genlib.scratch ])
    | 4 ->
        emit (Insn.Store (Insn.D, R.choose rng Genlib.scratch, Reg.t0,
                          8 * R.int rng 8))
    | 5 -> emit (Insn.Load (Insn.D, false, R.choose rng Genlib.scratch,
                            Reg.t0, 8 * R.int rng 8))
    | 6 ->
        let cond = R.choose rng [| Insn.Eq; Insn.Ne; Insn.Ltu |] in
        let v0, v1 = Genlib.random_cond_operands rng cond ~taken:(R.bool rng) in
        emit (Insn.Opi (Insn.Addi, Reg.t1, Reg.zero, v0));
        emit (Insn.Opi (Insn.Addi, Reg.t2, Reg.zero, v1));
        emit (Insn.Branch (cond, Reg.t1, Reg.t2, 8));
        emit Insn.nop
    | 7 -> emit (Insn.Jal (Reg.ra, 8)); emit Insn.nop
    | 8 -> emit (Insn.Fdiv (R.choose rng Genlib.scratch, Reg.t1, Reg.t2))
    | _ -> emit Insn.nop
  done;
  emit Insn.Ebreak;
  List.rev !body

let prop_cosim_arch_state =
  QCheck.Test.make ~name:"speculative core matches the golden model"
    ~count:60 QCheck.small_int (fun seed_int ->
      let rng = Dvz_util.Rng.create seed_int in
      let insns = random_linear_program rng in
      (* Speculative core run. *)
      let core = run_core (stim_of_insns insns) in
      (* Pure golden run over the same environment, stopped at the
         terminating trap. *)
      let mem = Phys_mem.create () in
      Array.iteri
        (fun i v -> Phys_mem.write mem ~addr:(Layout.secret_base + (8 * i)) ~size:8 v)
        secret;
      Phys_mem.write_words mem Layout.swap_base
        (Array.of_list (List.map Encode.encode insns));
      let g =
        Golden.create ~pc:Layout.swap_entry ~priv:Golden.User
          ~mtvec:Layout.mtvec (Phys_mem.golden_memory mem)
      in
      ignore (Golden.run g ~fuel:500 ~stop:(fun g -> Golden.mcause g <> 0) ());
      let ok = ref true in
      for r = 1 to 31 do
        if Core.arch_reg core (Reg.x r) <> Golden.reg g (Reg.x r) then
          ok := false
      done;
      !ok)

(* --- trace rendering ------------------------------------------------------ *)

let test_trace_rendering () =
  let stim =
    stim_of_insns
      (Genlib.li Reg.t0 0xE000
      @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0); Insn.Ebreak ])
  in
  let stim = { stim with Core.st_perms = [ (0xE000, Perm.absent) ] } in
  let core = Core.create Cfg.boom_small stim in
  let slots = Core.run core in
  let rendered = Dvz_uarch.Trace.render_slots slots in
  Alcotest.(check bool) "trace nonempty" true (String.length rendered > 0);
  let windows = Dvz_uarch.Trace.render_windows (Core.windows core) in
  Alcotest.(check bool) "window line mentions kind" true
    (String.length windows > 10);
  (* dual run report *)
  let stim2 =
    { stim with
      Core.st_swapmem =
        Swapmem.with_schedule stim.Core.st_swapmem
          (Swapmem.schedule stim.Core.st_swapmem) }
  in
  let r = Dualcore.run (Dualcore.create Cfg.boom_small stim2) in
  Alcotest.(check bool) "result report" true
    (String.length (Dvz_uarch.Trace.render_result r) > 0);
  Alcotest.(check bool) "taint log report" true
    (String.length (Dvz_uarch.Trace.render_taint_log ~every:4 r.Dualcore.r_log) > 0)

let () =
  Alcotest.run "dvz_uarch"
    [ ( "predictors",
        [ Alcotest.test_case "bht saturation" `Quick test_bht_saturation;
          Alcotest.test_case "bht aliasing" `Quick test_bht_aliasing;
          Alcotest.test_case "btb tagging" `Quick test_btb_tagged_vs_untagged;
          Alcotest.test_case "ras push/pop" `Quick test_ras_push_pop;
          Alcotest.test_case "ras restore full" `Quick test_ras_restore_full;
          Alcotest.test_case "ras B2 bug" `Quick test_ras_restore_top_only_bug;
          Alcotest.test_case "ras liveness" `Quick test_ras_liveness;
          Alcotest.test_case "loop predictor" `Quick test_loop_predictor;
          Alcotest.test_case "mdp" `Quick test_mdp ] );
      ( "caches",
        [ Alcotest.test_case "fill and hit" `Quick test_cache_fill_and_hit;
          Alcotest.test_case "conflict" `Quick test_cache_conflict;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "lfb decoy" `Quick test_lfb_decoy;
          Alcotest.test_case "tlb" `Quick test_tlb ] );
      ( "lsu",
        [ Alcotest.test_case "forwarding" `Quick test_stq_forwarding;
          Alcotest.test_case "pending alias" `Quick test_stq_pending_alias;
          Alcotest.test_case "youngest wins" `Quick test_stq_youngest_wins;
          Alcotest.test_case "snapshot/restore" `Quick test_stq_snapshot_restore;
          Alcotest.test_case "ldq" `Quick test_ldq_basic ] );
      ( "core",
        [ Alcotest.test_case "linear code" `Quick test_core_runs_linear_code;
          Alcotest.test_case "exception window" `Quick test_core_exception_window;
          Alcotest.test_case "illegal per core" `Quick
            test_core_boom_no_illegal_window;
          Alcotest.test_case "untrained branch quiet" `Quick
            test_core_branch_needs_training;
          Alcotest.test_case "trained branch window" `Quick
            test_core_branch_window_after_training;
          Alcotest.test_case "return window" `Quick test_core_return_window;
          Alcotest.test_case "disamb window" `Quick
            test_core_disamb_window_and_stale_value;
          Alcotest.test_case "window bounded" `Quick test_core_window_bounded;
          Alcotest.test_case "transient stores uncommitted" `Quick
            test_core_transient_stores_dont_commit;
          Alcotest.test_case "B1 sampling on XiangShan" `Quick
            test_core_meltdown_forwarding_b1;
          Alcotest.test_case "no B1 on BOOM" `Quick test_core_no_b1_on_boom;
          Alcotest.test_case "tightened secret faults" `Quick
            test_core_tighten_secret;
          Alcotest.test_case "state hash sensitivity" `Quick
            test_core_state_hash_secret_sensitivity;
          Alcotest.test_case "liveness views" `Quick test_core_liveness_views ] );
      ( "taint",
        [ Alcotest.test_case "write propagation" `Quick test_taint_write_propagation;
          Alcotest.test_case "cellift monotone" `Quick test_taint_cellift_monotone;
          Alcotest.test_case "ctrl gating" `Quick test_taint_ctrl_gating;
          Alcotest.test_case "untainted ctrl" `Quick
            test_taint_ctrl_untainted_sources;
          Alcotest.test_case "divergence" `Quick test_taint_divergence;
          Alcotest.test_case "copy/snapshot/restore" `Quick
            test_taint_copy_and_restore;
          Alcotest.test_case "module counts" `Quick test_taint_module_counts ] );
      ( "timing",
        [ Alcotest.test_case "fpu contention" `Quick test_fpu_contention_timing;
          Alcotest.test_case "constant-time control" `Quick
            test_no_timing_diff_without_secret_control ] );
      ( "sequencing",
        [ Alcotest.test_case "ecall terminates" `Quick
            test_ecall_also_terminates_sequence;
          Alcotest.test_case "slot budget" `Quick test_max_slots_bounds_runaway;
          Alcotest.test_case "training windows flagged" `Quick
            test_training_blob_windows_flagged;
          Alcotest.test_case "hash deterministic" `Quick
            test_state_hash_deterministic;
          Alcotest.test_case "dualcore deterministic" `Quick
            test_dualcore_deterministic ] );
      ( "cosim",
        [ QCheck_alcotest.to_alcotest prop_cosim_arch_state;
          Alcotest.test_case "trace rendering" `Quick test_trace_rendering ] );
      ( "dualcore",
        [ Alcotest.test_case "secret flows" `Quick test_dualcore_secret_flows;
          Alcotest.test_case "no spurious taint" `Quick
            test_dualcore_no_secret_no_taint_growth;
          Alcotest.test_case "FN mode suppression" `Quick
            test_dualcore_fn_mode_suppresses_control;
          Alcotest.test_case "clean timing" `Quick
            test_dualcore_timing_identical_without_secret_paths ] ) ]
