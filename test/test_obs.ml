(* Tests for the Dvz_obs telemetry subsystem and its campaign wiring:
   histogram bucket boundaries, fake-clock spans, JSONL event streams,
   exporters, replay, and the no-telemetry-influence regression. *)

module Clock = Dvz_obs.Clock
module Metrics = Dvz_obs.Metrics
module Events = Dvz_obs.Events
module Json = Dvz_obs.Json
module Exporters = Dvz_obs.Exporters
module Profile = Dvz_obs.Profile
module Server = Dvz_obs.Server
module Trace_event = Dvz_obs.Trace_event
module Campaign = Dejavuzz.Campaign
module Cfg = Dvz_uarch.Config

let boom = Cfg.boom_small

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- metrics: counters and gauges ---------------------------------------- *)

let test_counter_gauge_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "registration idempotent" 5
    (Metrics.counter_value (Metrics.counter r "c"));
  let g = Metrics.gauge r "g" in
  Metrics.set g 2.5;
  Metrics.record_max g 1.0;
  Alcotest.(check (float 0.0)) "max keeps high-water" 2.5 (Metrics.gauge_value g);
  Metrics.record_max g 7.0;
  Alcotest.(check (float 0.0)) "max raises" 7.0 (Metrics.gauge_value g);
  Metrics.reset r;
  Alcotest.(check int) "reset counter" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "reset gauge" 0.0 (Metrics.gauge_value g)

(* --- metrics: log2 histogram bucket boundaries ---------------------------- *)

let test_histogram_buckets () =
  (* le semantics: exact powers of two land on their own bound *)
  Alcotest.(check (float 0.0)) "1.0 -> le 1" 1.0 (Metrics.bucket_upper 1.0);
  Alcotest.(check (float 0.0)) "2.0 -> le 2" 2.0 (Metrics.bucket_upper 2.0);
  Alcotest.(check (float 0.0)) "1.5 -> le 2" 2.0 (Metrics.bucket_upper 1.5);
  Alcotest.(check (float 0.0)) "just above 1 -> le 2" 2.0
    (Metrics.bucket_upper 1.0000001);
  Alcotest.(check (float 0.0)) "0.3 -> le 0.5" 0.5 (Metrics.bucket_upper 0.3);
  Alcotest.(check (float 0.0)) "0.125 -> le 0.125" 0.125
    (Metrics.bucket_upper 0.125);
  Alcotest.(check (float 0.0)) "3.9 -> le 4" 4.0 (Metrics.bucket_upper 3.9);
  Alcotest.(check bool) "overflow bucket is +inf" true
    (Metrics.bucket_upper 1e40 = infinity);
  (* non-positive values land in the smallest bucket *)
  Alcotest.(check bool) "0 lands in the smallest bucket" true
    (Metrics.bucket_upper 0.0 < 1e-8);
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  List.iter (Metrics.observe h) [ 1.0; 1.5; 2.0; 0.3; 100.0 ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 104.8 (Metrics.histogram_sum h);
  let snap = Metrics.snapshot r in
  let _, _, hs = List.hd snap.Metrics.sn_histograms in
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets (0.5,1) (1,1) (2,2) (128,1)"
    [ (0.5, 1); (1.0, 1); (2.0, 2); (128.0, 1) ]
    hs.Metrics.hs_buckets

(* --- metrics: spans on a fake clock --------------------------------------- *)

let test_fake_clock_span_nesting () =
  let r = Metrics.create ~clock:(Clock.fake ()) () in
  (* Tick clock: every read advances by 1.  outer reads at t=0, inner at
     t=1 and t=2 (duration 1), outer stop reads t=3 (duration 3). *)
  Metrics.with_span r "outer" (fun () ->
      Metrics.with_span r "inner" (fun () -> ()));
  let inner = Metrics.histogram r "inner" and outer = Metrics.histogram r "outer" in
  Alcotest.(check (float 0.0)) "inner duration" 1.0 (Metrics.histogram_sum inner);
  Alcotest.(check (float 0.0)) "outer duration" 3.0 (Metrics.histogram_sum outer);
  Alcotest.(check int) "one observation each" 1 (Metrics.histogram_count inner);
  (* spans record on raise too *)
  (try Metrics.with_span r "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "raise still recorded" 1
    (Metrics.histogram_count (Metrics.histogram r "raising"))

(* --- json ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.Arr [ Json.Int 1; Json.Str "x"; Json.Obj [] ]) ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.fail e);
  (match Json.of_string "{\"u\":\"\\u0041\\u00e9\"}" with
  | Ok (Json.Obj [ ("u", Json.Str s) ]) ->
      Alcotest.(check string) "unicode escapes decode to UTF-8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode parse");
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Json.of_string "1 2" with Error _ -> true | Ok _ -> false);
  (match Json.of_lines "{\"a\":1}\n\n{\"a\":2}\n" with
  | Ok [ _; _ ] -> ()
  | _ -> Alcotest.fail "of_lines");
  Alcotest.(check (option int)) "member/to_int" (Some 7)
    (Option.bind (Json.member "k" (Json.Obj [ ("k", Json.Int 7) ])) Json.to_int)

(* --- events --------------------------------------------------------------- *)

let test_events_sink_and_context () =
  let buf = Buffer.create 64 in
  let sink = Events.to_buffer buf in
  Alcotest.(check bool) "null is null" true (Events.is_null Events.null);
  Alcotest.(check bool) "buffer sink is not null" false (Events.is_null sink);
  let labelled = Events.with_context sink [ ("trial", Json.Int 3) ] in
  Events.emit labelled [ ("type", Json.Str "x") ];
  Alcotest.(check string) "context appended"
    "{\"type\":\"x\",\"trial\":3}\n" (Buffer.contents buf);
  Events.emit Events.null [ ("type", Json.Str "dropped") ];
  Alcotest.(check string) "null sink drops"
    "{\"type\":\"x\",\"trial\":3}\n" (Buffer.contents buf)

(* --- exporters ------------------------------------------------------------ *)

let test_prometheus_render_escaping () =
  let r = Metrics.create () in
  let c =
    Metrics.counter r ~help:"line1\nline2 with back\\slash" "weird name-1"
  in
  Metrics.incr c;
  let text = Exporters.prometheus r in
  Alcotest.(check bool) "name sanitized" true
    (String.length text > 0 && contains text "weird_name_1 1\n");
  Alcotest.(check bool) "help newline escaped" true
    (contains text "line1\\nline2 with back\\\\slash")

let test_prometheus_histogram_cumulative () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5 ];
  let text = Exporters.prometheus r in
  Alcotest.(check bool) "cumulative buckets" true
    (contains text "lat_bucket{le=\"1\"} 2"
    && contains text "lat_bucket{le=\"2\"} 3"
    && contains text "lat_bucket{le=\"+Inf\"} 3"
    && contains text "lat_count 3")

let test_json_exporter_parses () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "c");
  Metrics.set (Metrics.gauge r "g") 1.25;
  Metrics.observe (Metrics.histogram r "h") 3.0;
  match Json.of_string (Exporters.render_json r) with
  | Ok j ->
      Alcotest.(check (option int)) "counter value" (Some 1)
        (Option.bind
           (Option.bind (Json.member "counters" j) (Json.member "c"))
           Json.to_int)
  | Error e -> Alcotest.fail e

let test_prometheus_collision_disambiguated () =
  (* "a.b" and "a:b" sanitize to the same series name; the exposition must
     keep them distinct, deterministically. *)
  let render () =
    let r = Metrics.create () in
    Metrics.incr (Metrics.counter r "a.b");
    Metrics.incr ~by:2 (Metrics.counter r "a_b");
    Metrics.set (Metrics.gauge r "a b") 3.0;
    Exporters.prometheus r
  in
  let text = render () in
  Alcotest.(check string) "deterministic" text (render ());
  let series =
    List.filter_map
      (fun line ->
        if line = "" || line.[0] = '#' then None
        else
          match String.index_opt line ' ' with
          | Some i -> Some (String.sub line 0 i)
          | None -> None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "three distinct series" 3
    (List.length (List.sort_uniq compare series));
  Alcotest.(check bool) "dup suffix used" true
    (List.exists (fun s -> contains s "_dup") series)

let test_snapshot_json_duplicate_keys () =
  let snap =
    { Metrics.sn_counters = [ ("k", "", 1); ("k", "", 2) ];
      sn_gauges = [];
      sn_histograms = [] }
  in
  match Exporters.snapshot_json snap with
  | Json.Obj fields -> (
      match List.assoc "counters" fields with
      | Json.Obj cs ->
          Alcotest.(check (list string)) "second key suffixed" [ "k"; "k_dup2" ]
            (List.map fst cs)
      | _ -> Alcotest.fail "counters not an object")
  | _ -> Alcotest.fail "snapshot not an object"

(* A registry with adversarial names/values always renders a well-formed
   Prometheus exposition: every sample line is NAME[{le="..."}] VALUE with
   a charset-clean name, HELP text is newline-free, histogram buckets are
   cumulative (monotone), and the +Inf bucket equals the _count sample. *)
let prop_prometheus_well_formed =
  let name_pool =
    [| "a.b"; "a:b"; "1st"; "sp ace"; "ok_name"; "läks"; "x-y"; "_u" |]
  in
  QCheck.Test.make ~name:"prometheus exposition is well-formed" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Dvz_util.Rng.create (seed + 1) in
      let r = Metrics.create () in
      let pick () = name_pool.(Dvz_util.Rng.int rng (Array.length name_pool)) in
      for _ = 1 to 1 + Dvz_util.Rng.int rng 4 do
        Metrics.incr ~by:(Dvz_util.Rng.int rng 100)
          (Metrics.counter r ~help:"multi\nline \\help" (pick ()))
      done;
      for _ = 1 to Dvz_util.Rng.int rng 3 do
        (* distinct suffix per kind: a name may not be re-registered as
           another metric kind *)
        Metrics.set
          (Metrics.gauge r (pick () ^ "!g"))
          (float (Dvz_util.Rng.int rng 50))
      done;
      for _ = 1 to 1 + Dvz_util.Rng.int rng 3 do
        let h = Metrics.histogram r (pick () ^ "_h") in
        for _ = 1 to Dvz_util.Rng.int rng 20 do
          Metrics.observe h (float (1 + Dvz_util.Rng.int rng 1000) /. 10.)
        done
      done;
      let text = Exporters.prometheus r in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      let name_ok n =
        n <> ""
        && (not ('0' <= n.[0] && n.[0] <= '9'))
        && String.for_all
             (fun c ->
               ('a' <= c && c <= 'z')
               || ('A' <= c && c <= 'Z')
               || ('0' <= c && c <= '9')
               || c = '_' || c = ':')
             n
      in
      (* collect histogram series: name -> (le, count) list in order *)
      let buckets = Hashtbl.create 8 and counts = Hashtbl.create 8 in
      let sample_ok line =
        match String.index_opt line ' ' with
        | None -> false
        | Some i -> (
            let series = String.sub line 0 i in
            match String.index_opt series '{' with
            | None ->
                (if Filename.check_suffix series "_count" then
                   let base =
                     String.sub series 0 (String.length series - 6)
                   in
                   Hashtbl.replace counts base
                     (int_of_string
                        (String.sub line (i + 1)
                           (String.length line - i - 1))));
                name_ok series
            | Some b ->
                let base = String.sub series 0 b in
                (if Filename.check_suffix base "_bucket" then
                   let bname = String.sub base 0 (String.length base - 7) in
                   let le =
                     (* {le="..."} *)
                     let inner =
                       String.sub series (b + 5)
                         (String.length series - b - 7)
                     in
                     inner
                   in
                   let v =
                     int_of_string
                       (String.sub line (i + 1) (String.length line - i - 1))
                   in
                   Hashtbl.replace buckets bname
                     ((le, v)
                     :: (try Hashtbl.find buckets bname
                         with Not_found -> [])));
                name_ok base)
      in
      let all_lines_ok =
        List.for_all
          (fun line ->
            if String.length line >= 1 && line.[0] = '#' then
              (* comment lines are single-line by construction; raw
                 newlines in help would have split them *)
              String.length line > 2
            else sample_ok line)
          lines
      in
      let histograms_ok =
        Hashtbl.fold
          (fun bname rev_bs ok ->
            let bs = List.rev rev_bs in
            let monotone =
              let rec go = function
                | (_, a) :: ((_, b) :: _ as rest) -> a <= b && go rest
                | _ -> true
              in
              go bs
            in
            let inf_matches =
              match List.rev bs with
              | ("+Inf", v) :: _ -> (
                  match Hashtbl.find_opt counts bname with
                  | Some c -> v = c
                  | None -> false)
              | _ -> false
            in
            ok && monotone && inf_matches)
          buckets true
      in
      all_lines_ok && histograms_ok)

(* The JSON exporter's output must parse back with our own parser and
   preserve every value. *)
let prop_json_exporter_roundtrip =
  QCheck.Test.make ~name:"json exporter round-trips" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Dvz_util.Rng.create (seed + 7) in
      let r = Metrics.create () in
      let counters =
        List.init
          (1 + Dvz_util.Rng.int rng 4)
          (fun i ->
            let n = Printf.sprintf "c%d" i in
            let v = Dvz_util.Rng.int rng 1000 in
            Metrics.incr ~by:v (Metrics.counter r n);
            (n, v))
      in
      let h = Metrics.histogram r "h" in
      let obs = 1 + Dvz_util.Rng.int rng 20 in
      for _ = 1 to obs do
        Metrics.observe h (float (Dvz_util.Rng.int rng 100))
      done;
      match Json.of_string (Exporters.render_json r) with
      | Error _ -> false
      | Ok j ->
          let counter_ok (n, v) =
            Option.bind
              (Option.bind (Json.member "counters" j) (Json.member n))
              Json.to_int
            = Some v
          in
          let count_ok =
            Option.bind
              (Option.bind
                 (Option.bind (Json.member "histograms" j) (Json.member "h"))
                 (Json.member "count"))
              Json.to_int
            = Some obs
          in
          List.for_all counter_ok counters && count_ok)

(* Labelled exposition (the fleet /metrics shape): adversarial label
   values must always escape into well-formed [name{k="v",...} value]
   lines, and a metric shared across groups gets one header and one
   sample line per group. *)
let prop_prometheus_labelled_well_formed =
  let label_pool =
    [| "w"; "sp ace"; "q\"uote"; "back\\slash"; "new\nline"; "läks"; "" |]
  in
  QCheck.Test.make ~name:"labelled exposition is well-formed" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Dvz_util.Rng.create (seed + 31) in
      let group i =
        let r = Metrics.create () in
        Metrics.incr
          ~by:(1 + Dvz_util.Rng.int rng 9)
          (Metrics.counter r "shared_total");
        Metrics.incr (Metrics.counter r (Printf.sprintf "only_%d" i));
        let h = Metrics.histogram r "lat_h" in
        for _ = 1 to 1 + Dvz_util.Rng.int rng 5 do
          Metrics.observe h (float_of_int (1 + Dvz_util.Rng.int rng 16))
        done;
        let lbls =
          if i = 0 then []
          else
            [ ("worker", string_of_int (i - 1));
              ( "host name",
                label_pool.(Dvz_util.Rng.int rng (Array.length label_pool))
              ) ]
        in
        (lbls, Metrics.snapshot r)
      in
      let n_groups = 1 + Dvz_util.Rng.int rng 3 in
      let groups = List.init n_groups group in
      let text = Exporters.prometheus_groups groups in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      let name_ok n =
        n <> ""
        && (not ('0' <= n.[0] && n.[0] <= '9'))
        && String.for_all
             (fun c ->
               ('a' <= c && c <= 'z')
               || ('A' <= c && c <= 'Z')
               || ('0' <= c && c <= '9')
               || c = '_' || c = ':')
             n
      in
      (* [k="v",...]: label names charset-clean, values with every
         backslash/quote escaped; a raw newline would have split the
         line and failed the scan. *)
      let label_block_ok s =
        let len = String.length s in
        let rec name i =
          match String.index_from_opt s i '=' with
          | None -> false
          | Some eq ->
              let n = String.sub s i (eq - i) in
              n <> ""
              && String.for_all
                   (fun c ->
                     ('a' <= c && c <= 'z')
                     || ('A' <= c && c <= 'Z')
                     || ('0' <= c && c <= '9')
                     || c = '_')
                   n
              && eq + 1 < len && s.[eq + 1] = '"'
              && value (eq + 2)
        and value i =
          if i >= len then false
          else
            match s.[i] with
            | '\\' ->
                i + 1 < len
                && (match s.[i + 1] with
                   | '\\' | '"' | 'n' -> true
                   | _ -> false)
                && value (i + 2)
            | '"' -> after (i + 1)
            | '\n' -> false
            | _ -> value (i + 1)
        and after i =
          if i = len then true else s.[i] = ',' && name (i + 1)
        in
        name 0
      in
      let sample_ok line =
        let len = String.length line in
        match String.index_opt line '{' with
        | None -> (
            match String.index_opt line ' ' with
            | None -> false
            | Some i ->
                name_ok (String.sub line 0 i)
                && float_of_string_opt
                     (String.sub line (i + 1) (len - i - 1))
                   <> None)
        | Some b -> (
            match String.rindex_opt line '}' with
            | None -> false
            | Some e ->
                e > b
                && name_ok (String.sub line 0 b)
                && label_block_ok (String.sub line (b + 1) (e - b - 1))
                && e + 2 < len
                && line.[e + 1] = ' '
                && float_of_string_opt
                     (String.sub line (e + 2) (len - e - 2))
                   <> None)
      in
      let all_ok =
        List.for_all
          (fun line ->
            if line.[0] = '#' then String.length line > 2 else sample_ok line)
          lines
      in
      let starts_with p l =
        String.length l >= String.length p
        && String.sub l 0 (String.length p) = p
      in
      let headers =
        List.length (List.filter (starts_with "# TYPE shared_total ") lines)
      in
      let samples =
        List.length
          (List.filter
             (fun l ->
               starts_with "shared_total " l || starts_with "shared_total{" l)
             lines)
      in
      all_ok && headers = 1 && samples = n_groups)

(* --- merge semantics (fleet telemetry aggregation) ------------------------ *)

let gen_snapshot seed =
  let rng = Dvz_util.Rng.create (seed + 11) in
  let r = Metrics.create ~clock:(Clock.fake ()) () in
  for _ = 1 to 1 + Dvz_util.Rng.int rng 3 do
    Metrics.incr
      ~by:(Dvz_util.Rng.int rng 100)
      (Metrics.counter r (Printf.sprintf "c%d" (Dvz_util.Rng.int rng 4)));
    Metrics.set
      (Metrics.gauge r (Printf.sprintf "g%d" (Dvz_util.Rng.int rng 3)))
      (float_of_int (Dvz_util.Rng.int rng 50));
    let h =
      Metrics.histogram r (Printf.sprintf "h%d" (Dvz_util.Rng.int rng 2))
    in
    for _ = 1 to Dvz_util.Rng.int rng 8 do
      Metrics.observe h (float_of_int (1 + Dvz_util.Rng.int rng 64))
    done
  done;
  Metrics.snapshot r

let prop_metrics_merge_commutative =
  QCheck.Test.make ~name:"Metrics.merge is commutative" ~count:60
    QCheck.(pair small_int small_int)
    (fun (sa, sb) ->
      let a = gen_snapshot sa and b = gen_snapshot sb in
      Metrics.merge a b = Metrics.merge b a
      && Metrics.merge a Metrics.empty_snapshot = a
      && Metrics.merge Metrics.empty_snapshot a = a)

let test_metrics_merge_semantics () =
  let reg obs =
    let r = Metrics.create () in
    Metrics.incr ~by:(fst obs) (Metrics.counter r "c");
    Metrics.set (Metrics.gauge r "g") (snd obs);
    List.iteri
      (fun _ v -> Metrics.observe (Metrics.histogram r "h") v)
      [ snd obs ];
    Metrics.snapshot r
  in
  let m = Metrics.merge (reg (2, 1.5)) (reg (3, 0.5)) in
  (match List.find_opt (fun (n, _, _) -> n = "c") m.Metrics.sn_counters with
  | Some (_, _, v) -> Alcotest.(check int) "counters add" 5 v
  | None -> Alcotest.fail "merged counter missing");
  (match List.find_opt (fun (n, _, _) -> n = "g") m.Metrics.sn_gauges with
  | Some (_, _, v) -> Alcotest.(check (float 0.0)) "gauges max" 1.5 v
  | None -> Alcotest.fail "merged gauge missing");
  match List.find_opt (fun (n, _, _) -> n = "h") m.Metrics.sn_histograms with
  | Some (_, _, h) ->
      Alcotest.(check int) "histogram counts add" 2 h.Metrics.hs_count;
      Alcotest.(check (float 1e-9)) "histogram sums add" 2.0 h.Metrics.hs_sum
  | None -> Alcotest.fail "merged histogram missing"

(* Dyadic durations (sixteenths) keep float addition exact, so the
   property is equality, not approximation. *)
let gen_entries seed =
  let rng = Dvz_util.Rng.create (seed + 23) in
  let paths = [| "a"; "a/b"; "a/c"; "d"; "d/e" |] in
  List.init
    (1 + Dvz_util.Rng.int rng 5)
    (fun _ ->
      let p = paths.(Dvz_util.Rng.int rng (Array.length paths)) in
      let depth =
        String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 p
      in
      let name =
        match String.rindex_opt p '/' with
        | Some i -> String.sub p (i + 1) (String.length p - i - 1)
        | None -> p
      in
      let six () = float_of_int (Dvz_util.Rng.int rng 64) /. 16.0 in
      { Profile.pf_path = p;
        pf_name = name;
        pf_depth = depth;
        pf_count = 1 + Dvz_util.Rng.int rng 9;
        pf_total_s = six ();
        pf_self_s = six ();
        pf_max_s = six () })

let prop_profile_merge_commutative =
  QCheck.Test.make ~name:"Profile.merge is commutative" ~count:60
    QCheck.(pair small_int small_int)
    (fun (sa, sb) ->
      let a = gen_entries sa and b = gen_entries sb in
      Profile.merge a b = Profile.merge b a
      && Profile.merge a [] = Profile.merge [] a)

(* --- campaign telemetry --------------------------------------------------- *)

let buffer_telemetry ?(progress_every = 0) () =
  let buf = Buffer.create 4096 in
  let lines = ref [] in
  let tel =
    { Campaign.t_events = Events.to_buffer buf;
      t_metrics = Metrics.create ~clock:(Clock.fake ~step:0.001 ()) ();
      t_progress_every = progress_every;
      t_progress = (fun l -> lines := l :: !lines);
      t_explain_dir = None;
      t_board = None }
  in
  (tel, buf, lines)

let small_options iterations rng_seed =
  { Campaign.default_options with Campaign.iterations; rng_seed }

let test_jsonl_golden_3_iterations () =
  let run () =
    let tel, buf, _ = buffer_telemetry () in
    ignore (Campaign.run ~telemetry:tel boom (small_options 3 2));
    Buffer.contents buf
  in
  let log = run () in
  (* fake clock + fixed seed: the whole stream is deterministic *)
  Alcotest.(check string) "byte-identical across runs" log (run ());
  match Json.of_lines log with
  | Error e -> Alcotest.fail e
  | Ok events ->
      let typ ev = Option.bind (Json.member "type" ev) Json.to_str in
      Alcotest.(check (option string)) "starts with campaign_start"
        (Some "campaign_start")
        (typ (List.hd events));
      Alcotest.(check (option string)) "ends with campaign_end"
        (Some "campaign_end")
        (typ (List.nth events (List.length events - 1)));
      let iters = List.filter (fun e -> typ e = Some "iteration") events in
      Alcotest.(check int) "one record per iteration" 3 (List.length iters);
      List.iter
        (fun ev ->
          List.iter
            (fun key ->
              if Json.member key ev = None then
                Alcotest.failf "iteration record missing %s" key)
            [ "iteration"; "seed_kind"; "phase1_triggered"; "coverage_delta";
              "new_findings"; "cycles"; "phase1_s"; "phase2_s"; "phase3_s" ])
        iters

let test_progress_lines () =
  let tel, _, lines = buffer_telemetry ~progress_every:5 () in
  ignore (Campaign.run ~telemetry:tel boom (small_options 10 2));
  Alcotest.(check int) "every 5 of 10 iterations" 2 (List.length !lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line mentions coverage" true
        (contains l "coverage="))
    !lines

let test_phase_spans_recorded () =
  let tel, _, _ = buffer_telemetry () in
  ignore (Campaign.run ~telemetry:tel boom (small_options 8 3));
  let h1 = Metrics.histogram tel.Campaign.t_metrics "dvz_phase1_seconds" in
  Alcotest.(check int) "phase1 span per iteration" 8 (Metrics.histogram_count h1);
  let iters =
    Metrics.counter tel.Campaign.t_metrics "dvz_campaign_iterations_total"
  in
  Alcotest.(check int) "iteration counter" 8 (Metrics.counter_value iters)

let stats_equal (a : Campaign.stats) (b : Campaign.stats) =
  a.Campaign.s_coverage_curve = b.Campaign.s_coverage_curve
  && a.Campaign.s_findings = b.Campaign.s_findings
  && a.Campaign.s_first_bug = b.Campaign.s_first_bug
  && a.Campaign.s_final_coverage = b.Campaign.s_final_coverage
  && a.Campaign.s_triggered = b.Campaign.s_triggered

let test_telemetry_does_not_change_results () =
  let options = small_options 25 4 in
  let plain = Campaign.run boom options in
  let tel, _, _ = buffer_telemetry ~progress_every:3 () in
  let instrumented = Campaign.run ~telemetry:tel boom options in
  Alcotest.(check bool) "bit-identical stats" true
    (stats_equal plain instrumented)

(* --- replay --------------------------------------------------------------- *)

let test_replay_roundtrip () =
  let tel, buf, _ = buffer_telemetry () in
  let stats = Campaign.run ~telemetry:tel boom (small_options 40 3) in
  Alcotest.(check bool) "campaign found something" true
    (stats.Campaign.s_findings <> []);
  match Dejavuzz.Replay.of_string (Buffer.contents buf) with
  | Ok summary ->
      Alcotest.(check string) "summary reconstructed from the log alone"
        (Dejavuzz.Report.summary stats
        ^ Dejavuzz.Report.table5 ~core_name:boom.Cfg.name
            stats.Campaign.s_findings)
        summary
  | Error e -> Alcotest.fail e

let test_replay_errors () =
  Alcotest.(check bool) "empty log rejected" true
    (match Dejavuzz.Replay.of_string "" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad json rejected" true
    (match Dejavuzz.Replay.of_string "{oops\n" with
    | Error _ -> true
    | Ok _ -> false)

(* --- trace ?every clamp --------------------------------------------------- *)

let test_taint_log_every_clamped () =
  let log =
    List.init 4 (fun i ->
        { Dvz_uarch.Dualcore.le_slot = i; le_total = i;
          le_per_module = [ ("rob", i) ]; le_in_window = false })
  in
  let all = Dvz_uarch.Trace.render_taint_log ~every:1 log in
  Alcotest.(check string) "every:0 clamps to 1" all
    (Dvz_uarch.Trace.render_taint_log ~every:0 log);
  Alcotest.(check string) "negative clamps to 1" all
    (Dvz_uarch.Trace.render_taint_log ~every:(-3) log)

let test_taint_log_sampled_by_slot () =
  (* A bounded Dualcore log holds sparse slot numbers; sampling must key
     on the slot, not the list position, and always keep the final entry. *)
  let mk slot =
    { Dvz_uarch.Dualcore.le_slot = slot; le_total = slot;
      le_per_module = []; le_in_window = false }
  in
  let log = List.map mk [ 0; 3; 10; 11 ] in
  let out = Dvz_uarch.Trace.render_taint_log ~every:5 log in
  Alcotest.(check bool) "slot 0 kept" true (contains out "slot 0 ");
  Alcotest.(check bool) "slot 3 skipped" false (contains out "slot 3 ");
  Alcotest.(check bool) "slot 10 kept" true (contains out "slot 10");
  Alcotest.(check bool) "final slot 11 always kept" true
    (contains out "slot 11")

(* --- events: ring and tee -------------------------------------------------- *)

let test_ring_and_tee () =
  let ring = Events.ring ~cap:4 () in
  Alcotest.(check bool) "ring is not null" false (Events.is_null ring);
  for i = 1 to 6 do
    Events.emit ring [ ("i", Json.Int i) ]
  done;
  Alcotest.(check (list string)) "tail is oldest-first"
    [ "{\"i\":5}"; "{\"i\":6}" ]
    (Events.recent ring 2);
  Alcotest.(check int) "tail capped at ring size" 4
    (List.length (Events.recent ring 99));
  Alcotest.(check (list string)) "non-ring sinks hold no tail" []
    (Events.recent Events.null 5);
  let buf = Buffer.create 64 in
  let t = Events.tee (Events.to_buffer buf) ring in
  Events.emit
    (Events.with_context t [ ("ctx", Json.Int 1) ])
    [ ("x", Json.Int 0) ];
  Alcotest.(check string) "tee reaches the buffer branch"
    "{\"x\":0,\"ctx\":1}\n" (Buffer.contents buf);
  Alcotest.(check (list string)) "tee reaches the ring branch"
    [ "{\"x\":0,\"ctx\":1}" ]
    (Events.recent t 1);
  Alcotest.(check bool) "tee of nulls is null" true
    (Events.is_null (Events.tee Events.null Events.null));
  Alcotest.(check bool) "tee with one live branch is live" false
    (Events.is_null (Events.tee Events.null ring))

(* --- events: batch sink (fleet worker flushes) ----------------------------- *)

let test_events_batch_drain () =
  let b = Events.batch ~cap:2 () in
  Alcotest.(check bool) "batch is not null" false (Events.is_null b);
  List.iter
    (fun n -> Events.emit b [ ("type", Json.Str n) ])
    [ "one"; "two"; "three" ];
  let lines, dropped = Events.drain b in
  Alcotest.(check (list string)) "cap kept, oldest first"
    [ "{\"type\":\"one\"}"; "{\"type\":\"two\"}" ]
    lines;
  Alcotest.(check int) "overflow counted" 1 dropped;
  Alcotest.(check (pair (list string) int)) "drain empties" ([], 0)
    (Events.drain b);
  Events.emit b [ ("type", Json.Str "four") ];
  Alcotest.(check (pair (list string) int)) "refills, dropped reset"
    ([ "{\"type\":\"four\"}" ], 0)
    (Events.drain b);
  Alcotest.(check (pair (list string) int)) "non-batch sinks drain empty"
    ([], 0)
    (Events.drain Events.null)

let test_events_emit_rendered_context () =
  let buf = Buffer.create 256 in
  let sink =
    Events.with_context (Events.to_buffer buf) [ ("wslot", Json.Int 3) ]
  in
  Events.emit_rendered sink {|{"type":"assign","epoch":1}|};
  Events.emit_rendered sink "{}";
  Events.emit_rendered sink "not json";
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check string) "context spliced into the object"
    {|{"type":"assign","epoch":1,"wslot":3}|}
    (List.nth lines 0);
  Alcotest.(check string) "empty object gains context" {|{"wslot":3}|}
    (List.nth lines 1);
  match Json.of_string (List.nth lines 2) with
  | Ok j ->
      Alcotest.(check (option string)) "non-object wrapped" (Some "not json")
        (Option.bind (Json.member "line" j) Json.to_str);
      Alcotest.(check (option int)) "wrapped line keeps context" (Some 3)
        (Option.bind (Json.member "wslot" j) Json.to_int)
  | Error e -> Alcotest.failf "wrapped line not JSON: %s" e

(* --- metrics: multi-domain safety ------------------------------------------ *)

let test_metrics_domain_safety () =
  (* Counters and high-water gauges take concurrent updates from worker
     domains (--jobs N); no increment may be lost, and record_max must
     keep the exact maximum across all domains. *)
  let r = Metrics.create () in
  let c = Metrics.counter r "stress_c" in
  let g = Metrics.gauge r "stress_g" in
  let doms = 4 and per = 20_000 in
  let worker d () =
    for i = 1 to per do
      Metrics.incr c;
      Metrics.record_max g (float_of_int ((d * per) + i))
    done
  in
  let spawned = List.init doms (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join spawned;
  Alcotest.(check int) "no lost increments" (doms * per)
    (Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "high-water exact" (float_of_int (doms * per))
    (Metrics.gauge_value g)

(* --- profiler --------------------------------------------------------------- *)

let with_profiler ?(trace = false) f =
  Profile.arm ~clock:(Clock.fake ()) ~trace ();
  Profile.reset ();
  Fun.protect ~finally:(fun () -> Profile.disarm ()) f

(* Self-time arithmetic: on the fake clock every region costs exactly two
   ticks of its own, so for every aggregate entry
   total = self + Σ (direct children totals), exactly. *)
let prop_profile_self_time =
  QCheck.Test.make ~name:"profiler self-times sum to parent totals" ~count:25
    QCheck.small_int (fun seed ->
      with_profiler (fun () ->
          let rng = Dvz_util.Rng.create (seed + 3) in
          let names = [| "a"; "b"; "c" |] in
          let rec build depth =
            Profile.wrap names.(Dvz_util.Rng.int rng 3) (fun () ->
                let kids = if depth >= 3 then 0 else Dvz_util.Rng.int rng 3 in
                for _ = 1 to kids do
                  build (depth + 1)
                done)
          in
          for _ = 1 to 1 + Dvz_util.Rng.int rng 4 do
            build 0
          done;
          let entries = Profile.snapshot () in
          let direct_child e c =
            let prefix = e.Profile.pf_path ^ "/" in
            c.Profile.pf_depth = e.Profile.pf_depth + 1
            && String.length c.Profile.pf_path > String.length prefix
            && String.sub c.Profile.pf_path 0 (String.length prefix) = prefix
          in
          entries <> []
          && List.for_all
               (fun e ->
                 let child_total =
                   List.fold_left
                     (fun acc c ->
                       if direct_child e c then acc +. c.Profile.pf_total_s
                       else acc)
                     0.0 entries
                 in
                 Float.abs
                   (e.Profile.pf_total_s -. (e.Profile.pf_self_s +. child_total))
                 < 1e-9
                 && e.Profile.pf_self_s >= 0.0
                 && e.Profile.pf_max_s <= e.Profile.pf_total_s +. 1e-9)
               entries))

let test_profile_aggregation_counts () =
  with_profiler (fun () ->
      Profile.wrap "outer" (fun () ->
          Profile.wrap "inner" (fun () -> ());
          Profile.wrap "inner" (fun () -> ()));
      let entries = Profile.snapshot () in
      let find path =
        match
          List.find_opt (fun e -> e.Profile.pf_path = path) entries
        with
        | Some e -> e
        | None -> Alcotest.failf "no entry for %s" path
      in
      let outer = find "outer" and inner = find "outer/inner" in
      Alcotest.(check int) "outer once" 1 outer.Profile.pf_count;
      Alcotest.(check int) "inner twice" 2 inner.Profile.pf_count;
      Alcotest.(check int) "inner nested one deep" 1 inner.Profile.pf_depth;
      (* tick clock: every read advances by one, so outer reads t=0 and
         t=5 (duration 5) around two inner regions of duration 1 each *)
      Alcotest.(check (float 0.0)) "outer total" 5.0 outer.Profile.pf_total_s;
      Alcotest.(check (float 0.0)) "inner total" 2.0 inner.Profile.pf_total_s;
      Alcotest.(check (float 0.0)) "outer self" 3.0 outer.Profile.pf_self_s;
      (* the table and JSON artifact carry every region *)
      let table = Profile.render_table entries in
      Alcotest.(check bool) "table mentions inner" true
        (contains table "inner");
      match Profile.to_json entries with
      | Json.Obj fields ->
          Alcotest.(check (option string)) "artifact schema"
            (Some "dvz-profile/1")
            (Option.bind (List.assoc_opt "schema" fields) Json.to_str)
      | _ -> Alcotest.fail "profile artifact not an object")

let test_profile_disarmed_probe_allocation_free () =
  (* The recommended hot-path pattern must not allocate while disarmed:
     the closure sits on the armed branch only.  A small budget absorbs
     the Gc.minor_words float boxes themselves. *)
  Profile.disarm ();
  let sink = ref 0 in
  let f () = incr sink in
  let probe () = if Profile.armed () then Profile.wrap "x" f else f () in
  for _ = 1 to 100 do probe () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    probe ()
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "disarmed probes allocation-free (%.0f words)" dw)
    true (dw < 256.0)

let test_trace_event_export_valid () =
  with_profiler ~trace:true (fun () ->
      Profile.set_tid 0;
      Profile.wrap "outer" (fun () -> Profile.wrap "inner" (fun () -> ()));
      Profile.set_tid 2;
      Profile.wrap "worker-work" (fun () -> ());
      Profile.set_tid 0;
      let evs = Profile.events () in
      Alcotest.(check int) "three regions recorded" 3 (List.length evs);
      Alcotest.(check int) "nothing dropped" 0 (Profile.events_dropped ());
      match Json.of_string (Trace_event.render evs) with
      | Error e -> Alcotest.failf "trace not valid JSON: %s" e
      | Ok j -> (
          match Json.member "traceEvents" j with
          | Some (Json.Arr items) ->
              (* 1 process-name + 2 thread-name metadata records + 3
                 complete events *)
              Alcotest.(check int) "metas + events" 6 (List.length items);
              Alcotest.(check bool) "process_name metadata present" true
                (List.exists
                   (fun it ->
                     Option.bind (Json.member "name" it) Json.to_str
                     = Some "process_name")
                   items);
              let ph it =
                Option.bind (Json.member "ph" it) Json.to_str
              in
              Alcotest.(check bool) "only X and M phases" true
                (List.for_all
                   (fun it -> ph it = Some "X" || ph it = Some "M")
                   items);
              let xs = List.filter (fun it -> ph it = Some "X") items in
              Alcotest.(check bool) "X events carry ts/dur/pid/tid" true
                (List.for_all
                   (fun it ->
                     let geti k =
                       Option.bind (Json.member k it) Json.to_int
                     in
                     (match geti "ts" with Some t -> t >= 0 | None -> false)
                     && (match geti "dur" with
                        | Some d -> d >= 1
                        | None -> false)
                     && geti "pid" = Some 1
                     && match geti "tid" with
                        | Some t -> t = 0 || t = 2
                        | None -> false)
                   xs)
          | _ -> Alcotest.fail "traceEvents missing"))

(* Incremental cursor reads: the fleet worker ships only the delta since
   its previous flush. *)
let test_profile_events_from () =
  with_profiler ~trace:true (fun () ->
      Profile.wrap "a" (fun () -> ());
      let first, c1 = Profile.events_from 0 in
      Alcotest.(check int) "one event so far" 1 (List.length first);
      Profile.wrap "b" (fun () -> ());
      Profile.wrap "c" (fun () -> ());
      let next, c2 = Profile.events_from c1 in
      Alcotest.(check (list string)) "delta only, in order" [ "b"; "c" ]
        (List.map (fun e -> e.Profile.ev_name) next);
      let empty, c3 = Profile.events_from c2 in
      Alcotest.(check int) "drained" 0 (List.length empty);
      Alcotest.(check int) "cursor stable" c2 c3;
      Alcotest.(check (list string)) "full read still sees everything"
        [ "a"; "b"; "c" ]
        (List.map (fun e -> e.Profile.ev_name) (fst (Profile.events_from 0))))

let test_render_table_percent_and_sort () =
  let entry path self =
    { Profile.pf_path = path;
      pf_name = path;
      pf_depth = 0;
      pf_count = 1;
      pf_total_s = self;
      pf_self_s = self;
      pf_max_s = self }
  in
  let table =
    Profile.render_table
      [ entry "small" 1.0; entry "big" 3.0; entry "mid" 1.0 ]
  in
  Alcotest.(check bool) "has a self % column" true (contains table "self %");
  Alcotest.(check bool) "percentages of total self" true
    (contains table "60.0" && contains table "20.0");
  let index needle =
    let rec go i =
      if i + String.length needle > String.length table then
        Alcotest.failf "table lacks %s" needle
      else if String.sub table i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  (* self-time desc, then path asc on ties: big, mid, small *)
  Alcotest.(check bool) "sorted by self desc then path" true
    (index "big" < index "mid" && index "mid" < index "small")

let test_trace_multi_group_export () =
  let ev name tid start =
    { Profile.ev_path = name;
      ev_name = name;
      ev_tid = tid;
      ev_start = start;
      ev_dur = 0.5 }
  in
  let groups =
    [ (1, "dejavuzz coordinator", [ ev "a" 0 10.0 ]);
      (3, "dejavuzz worker 1", [ ev "b" 0 10.5; ev "c" 1 11.0 ]) ]
  in
  match Json.of_string (Trace_event.render_multi groups) with
  | Error e -> Alcotest.failf "multi trace not JSON: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.Arr items) ->
          (* 2 process metas + 3 thread metas + 3 X events *)
          Alcotest.(check int) "metas + events" 8 (List.length items);
          let str k it = Option.bind (Json.member k it) Json.to_str in
          let int k it = Option.bind (Json.member k it) Json.to_int in
          let pnames =
            List.filter_map
              (fun it ->
                if str "name" it = Some "process_name" then
                  match (int "pid" it, Json.member "args" it) with
                  | Some pid, Some args ->
                      Option.map (fun n -> (pid, n)) (str "name" args)
                  | _ -> None
                else None)
              items
          in
          Alcotest.(check (list (pair int string)))
            "one named process group per pid"
            [ (1, "dejavuzz coordinator"); (3, "dejavuzz worker 1") ]
            (List.sort compare pnames);
          (* shared base: earliest region anywhere is ts 0 *)
          let ts_of name =
            match
              List.find_opt (fun it -> str "name" it = Some name) items
            with
            | Some it -> int "ts" it
            | None -> None
          in
          Alcotest.(check (option int)) "earliest event at ts 0" (Some 0)
            (ts_of "a");
          Alcotest.(check (option int)) "worker event on the shared axis"
            (Some 500_000) (ts_of "b");
          Alcotest.(check (option int)) "second worker track" (Some 1_000_000)
            (ts_of "c")
      | _ -> Alcotest.fail "traceEvents missing")

(* --- live status server ----------------------------------------------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 and chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then (
          Buffer.add_subbytes buf chunk 0 n;
          drain ())
      in
      (try drain () with End_of_file -> ());
      Buffer.contents buf)

let split_response raw =
  let len = String.length raw in
  let rec find i =
    if i + 4 > len then Alcotest.fail "no header/body separator"
    else if String.sub raw i 4 = "\r\n\r\n" then i
    else find (i + 1)
  in
  let i = find 0 in
  (String.sub raw 0 i, String.sub raw (i + 4) (len - i - 4))

let test_live_server_endpoints () =
  (* Run a short campaign that publishes to a board and a ring, then
     serve the exact routes the CLI wires up and check every endpoint
     over a real loopback socket on an ephemeral port. *)
  let board = Campaign.new_board () in
  let ring = Events.ring ~cap:64 () in
  let registry = Metrics.create ~clock:(Clock.fake ~step:0.001 ()) () in
  let tel =
    { Campaign.quiet with
      Campaign.t_events = ring;
      t_metrics = registry;
      t_board = Some board }
  in
  ignore (Campaign.run ~telemetry:tel boom (small_options 5 2));
  let routes =
    [ ( "/healthz",
        fun _ ->
          Server.json
            (Json.Obj
               [ ("version", Json.Str "test");
                 ("uptime_s", Json.Float 0.0);
                 ("pid", Json.Int (Unix.getpid ()));
                 ("mode", Json.Str "local") ]) );
      ( "/status",
        fun _ ->
          match Campaign.board_read board with
          | Some p -> Server.json (Campaign.progress_json p)
          | None -> Server.json (Json.Obj [ ("phase", Json.Str "starting") ])
      );
      ( "/metrics",
        fun _ ->
          { Server.status = 200;
            content_type = "text/plain; version=0.0.4";
            body = Exporters.prometheus registry } );
      ( "/events",
        fun query ->
          match Server.int_param ~default:5 "n" query with
          | Error resp -> resp
          | Ok n ->
              let keep =
                match List.assoc_opt "kind" query with
                | None -> fun _ -> true
                | Some kind -> (
                    fun line ->
                      match Json.of_string line with
                      | Ok j ->
                          Option.bind (Json.member "type" j) Json.to_str
                          = Some kind
                      | Error _ -> false)
              in
              Server.text
                (String.concat "\n" (List.filter keep (Events.recent ring n))
                ^ "\n") ) ]
  in
  match Server.start ~port:0 ~routes () with
  | Error e -> Alcotest.failf "server did not start: %s" e
  | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let port = Server.port srv in
          let headers, body = split_response (http_get port "/healthz") in
          Alcotest.(check bool) "healthz 200" true (contains headers " 200 ");
          (match Json.of_string body with
          | Error e -> Alcotest.failf "/healthz not JSON: %s" e
          | Ok j ->
              Alcotest.(check (option string)) "healthz mode" (Some "local")
                (Option.bind (Json.member "mode" j) Json.to_str);
              Alcotest.(check (option int)) "healthz pid"
                (Some (Unix.getpid ()))
                (Option.bind (Json.member "pid" j) Json.to_int);
              Alcotest.(check bool) "healthz version" true
                (Json.member "version" j <> None
                && Json.member "uptime_s" j <> None));
          let sheaders, sbody = split_response (http_get port "/status") in
          Alcotest.(check bool) "status 200" true (contains sheaders " 200 ");
          Alcotest.(check bool) "status is json" true
            (contains sheaders "application/json");
          (match Json.of_string sbody with
          | Error e -> Alcotest.failf "/status not JSON: %s" e
          | Ok j ->
              let stri k = Option.bind (Json.member k j) Json.to_str in
              let inti k = Option.bind (Json.member k j) Json.to_int in
              Alcotest.(check (option string)) "phase" (Some "finished")
                (stri "phase");
              Alcotest.(check (option int)) "iteration" (Some 5)
                (inti "iteration");
              Alcotest.(check (option int)) "total" (Some 5) (inti "total");
              List.iter
                (fun key ->
                  if Json.member key j = None then
                    Alcotest.failf "/status missing %s" key)
                [ "core"; "findings"; "triggered"; "coverage"; "corpus_size";
                  "top_rewards"; "harness_crashes"; "watchdog_timeouts";
                  "sim_cycles"; "batches"; "jobs"; "domain_iterations";
                  "elapsed_s"; "eta_s" ];
              match Json.member "domain_iterations" j with
              | Some (Json.Arr (_ :: _)) -> ()
              | _ -> Alcotest.fail "domain_iterations not a non-empty array");
          let mheaders, mbody = split_response (http_get port "/metrics") in
          Alcotest.(check bool) "metrics 200" true (contains mheaders " 200 ");
          Alcotest.(check bool) "metrics exposition format" true
            (contains mheaders "text/plain; version=0.0.4");
          Alcotest.(check bool) "metrics has TYPE comments" true
            (contains mbody "# TYPE");
          Alcotest.(check bool) "campaign counters exported" true
            (contains mbody "dvz_campaign_iterations_total 5");
          let _, ebody = split_response (http_get port "/events?n=2") in
          (match Json.of_lines ebody with
          | Ok evs ->
              Alcotest.(check int) "two tail events" 2 (List.length evs);
              Alcotest.(check (option string)) "tail ends with campaign_end"
                (Some "campaign_end")
                (Option.bind
                   (Json.member "type" (List.nth evs 1))
                   Json.to_str)
          | Error e -> Alcotest.failf "/events tail not JSONL: %s" e);
          let _, kbody =
            split_response (http_get port "/events?kind=campaign_end&n=5")
          in
          (match Json.of_lines kbody with
          | Ok evs ->
              Alcotest.(check bool) "kind filter keeps only matches" true
                (evs <> []
                && List.for_all
                     (fun ev ->
                       Option.bind (Json.member "type" ev) Json.to_str
                       = Some "campaign_end")
                     evs)
          | Error e -> Alcotest.failf "filtered /events not JSONL: %s" e);
          (* Query-string hardening: junk values, duplicate keys and
             overlong queries are a client error, never an exception. *)
          List.iter
            (fun path ->
              let h, _ = split_response (http_get port path) in
              Alcotest.(check bool)
                (Printf.sprintf "%s is 400" path)
                true (contains h " 400 "))
            [ "/events?n=abc";
              "/events?n=2&n=3";
              "/events?" ^ String.make 2000 'q' ];
          let nheaders, _ = split_response (http_get port "/nope") in
          Alcotest.(check bool) "unknown path is 404" true
            (contains nheaders " 404 "))

let test_server_drops_slow_clients () =
  (* A client that connects and never sends a request line must not
     wedge the accept loop: the server hangs up at the deadline and
     later requests are served. *)
  let routes = [ ("/healthz", fun _ -> Server.text "ok\n") ] in
  match Server.start ~port:0 ~client_timeout_s:0.3 ~routes () with
  | Error e -> Alcotest.failf "server did not start: %s" e
  | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let port = Server.port srv in
          let silent = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close silent with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect silent
                (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              (* Trickle a partial request line, then go quiet. *)
              ignore (Unix.write_substring silent "GE" 0 2);
              let t0 = Unix.gettimeofday () in
              let headers, body = split_response (http_get port "/healthz") in
              Alcotest.(check bool) "request served despite slow client" true
                (contains headers " 200 ");
              Alcotest.(check string) "body intact" "ok\n" body;
              Alcotest.(check bool) "served within a few deadlines" true
                (Unix.gettimeofday () -. t0 < 3.0);
              (* The server answers the timed-out client with a 400 and
                 hangs up; drain to EOF to observe both. *)
              let buf = Bytes.create 256 in
              let got = Buffer.create 64 in
              let rec drain () =
                match Unix.read silent buf 0 256 with
                | 0 -> ()
                | n ->
                    Buffer.add_subbytes got buf 0 n;
                    drain ()
                | exception
                    Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                    ()
              in
              drain ();
              Alcotest.(check bool) "silent client got a 400 then EOF" true
                (contains (Buffer.contents got) " 400 ")));
      (match Server.start ~port:0 ~client_timeout_s:0.0 ~routes () with
      | Ok srv ->
          Server.stop srv;
          Alcotest.fail "non-positive timeout accepted"
      | Error e ->
          Alcotest.(check bool) "non-positive timeout rejected" true
            (contains e "must be positive"))

(* --- parallel map counters ------------------------------------------------ *)

let test_parallel_task_counters () =
  let before =
    Metrics.counter_value
      (Metrics.counter Metrics.default "dvz_parallel_tasks_total")
  in
  let r = Dvz_util.Parallel.map ~domains:2 (fun x -> x * x) [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "results ordered" [ 1; 4; 9; 16 ] r;
  let after =
    Metrics.counter_value
      (Metrics.counter Metrics.default "dvz_parallel_tasks_total")
  in
  Alcotest.(check int) "4 tasks counted" 4 (after - before)

let () =
  Alcotest.run "dvz_obs"
    [ ( "metrics",
        [ Alcotest.test_case "counters and gauges" `Quick
            test_counter_gauge_basics;
          Alcotest.test_case "log2 bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "fake-clock span nesting" `Quick
            test_fake_clock_span_nesting ] );
      ( "json",
        [ Alcotest.test_case "roundtrip and escapes" `Quick test_json_roundtrip ] );
      ( "events",
        [ Alcotest.test_case "sinks and context" `Quick
            test_events_sink_and_context;
          Alcotest.test_case "ring tails and tee fan-out" `Quick
            test_ring_and_tee;
          Alcotest.test_case "batch sink drains with overflow count" `Quick
            test_events_batch_drain;
          Alcotest.test_case "rendered lines gain context" `Quick
            test_events_emit_rendered_context ] );
      ( "profile",
        [ QCheck_alcotest.to_alcotest prop_profile_self_time;
          Alcotest.test_case "aggregation counts and artifact" `Quick
            test_profile_aggregation_counts;
          Alcotest.test_case "disarmed probes allocation-free" `Quick
            test_profile_disarmed_probe_allocation_free;
          Alcotest.test_case "trace-event export is valid" `Quick
            test_trace_event_export_valid;
          Alcotest.test_case "incremental event cursor" `Quick
            test_profile_events_from;
          Alcotest.test_case "table percent column and sort" `Quick
            test_render_table_percent_and_sort;
          Alcotest.test_case "multi-process trace export" `Quick
            test_trace_multi_group_export;
          QCheck_alcotest.to_alcotest prop_profile_merge_commutative ] );
      ( "server",
        [ Alcotest.test_case "slow clients dropped at deadline" `Quick
            test_server_drops_slow_clients;
          Alcotest.test_case "live endpoints on an ephemeral port" `Quick
            test_live_server_endpoints ] );
      ( "exporters",
        [ Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_render_escaping;
          Alcotest.test_case "prometheus cumulative buckets" `Quick
            test_prometheus_histogram_cumulative;
          Alcotest.test_case "json snapshot parses" `Quick
            test_json_exporter_parses;
          Alcotest.test_case "collision disambiguation" `Quick
            test_prometheus_collision_disambiguated;
          Alcotest.test_case "duplicate snapshot keys" `Quick
            test_snapshot_json_duplicate_keys;
          QCheck_alcotest.to_alcotest prop_prometheus_well_formed;
          QCheck_alcotest.to_alcotest prop_prometheus_labelled_well_formed;
          QCheck_alcotest.to_alcotest prop_json_exporter_roundtrip;
          Alcotest.test_case "merge semantics" `Quick
            test_metrics_merge_semantics;
          QCheck_alcotest.to_alcotest prop_metrics_merge_commutative ] );
      ( "campaign",
        [ Alcotest.test_case "jsonl golden, 3 iterations" `Quick
            test_jsonl_golden_3_iterations;
          Alcotest.test_case "progress lines" `Quick test_progress_lines;
          Alcotest.test_case "phase spans recorded" `Quick
            test_phase_spans_recorded;
          Alcotest.test_case "telemetry neutral (regression)" `Quick
            test_telemetry_does_not_change_results ] );
      ( "replay",
        [ Alcotest.test_case "roundtrip" `Quick test_replay_roundtrip;
          Alcotest.test_case "errors" `Quick test_replay_errors ] );
      ( "trace",
        [ Alcotest.test_case "taint log every clamp" `Quick
            test_taint_log_every_clamped;
          Alcotest.test_case "taint log sampled by slot" `Quick
            test_taint_log_sampled_by_slot ] );
      ( "parallel",
        [ Alcotest.test_case "task counters" `Quick test_parallel_task_counters;
          Alcotest.test_case "metrics domain safety" `Quick
            test_metrics_domain_safety ] ) ]
