(* Integration tests for Dvz_experiments: the curated attack suite and the
   per-table/figure harnesses, checking the shape properties the paper's
   evaluation reports. *)

module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Dualcore = Dvz_uarch.Dualcore
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module E = Dvz_experiments

let boom = Cfg.boom_small
let xs = Cfg.xiangshan_minimal

let test_attacks_build_everywhere () =
  List.iter
    (fun cfg ->
      List.iter
        (fun name ->
          let tc = E.Attacks.build cfg name in
          Alcotest.(check bool)
            (cfg.Cfg.name ^ "/" ^ E.Attacks.to_string name ^ " triggers")
            true
            (Dejavuzz.Trigger_opt.evaluate cfg tc))
        E.Attacks.all)
    [ boom; xs ]

let test_attacks_access_secret () =
  List.iter
    (fun name ->
      let tc = E.Attacks.build boom name in
      let stim = Packet.stimulus ~secret:E.Attacks.secret tc in
      let r = Dualcore.run (Dualcore.create boom stim) in
      Alcotest.(check bool)
        (E.Attacks.to_string name ^ " reaches the secret")
        true
        (List.exists
           (fun w ->
             w.Core.wr_in_transient_blob && w.Core.wr_secret_accessed)
           r.Dualcore.r_windows_a))
    E.Attacks.all

let test_meltdown_is_privileged () =
  let tc = E.Attacks.build boom E.Attacks.Meltdown in
  let stim = Packet.stimulus ~secret:E.Attacks.secret tc in
  let r = Dualcore.run (Dualcore.create boom stim) in
  Alcotest.(check bool) "privilege-violating access" true
    (List.exists (fun w -> w.Core.wr_secret_fault) r.Dualcore.r_windows_a)

let test_fig6_shape () =
  let series = E.Fig6.run ~cfg:boom () in
  Alcotest.(check int) "15 series (5 cases x 3 modes)" 15 (List.length series);
  (* per test case: CellIFT peak strictly above diffIFT peak, and the FN
     variant at or below diffIFT *)
  List.iter
    (fun case ->
      let find mode =
        List.find
          (fun s -> s.E.Fig6.s_case = case && s.E.Fig6.s_mode = mode)
          series
      in
      let peak s = Array.fold_left max 0 s.E.Fig6.s_totals in
      let cell = peak (find "CellIFT") in
      let diff = peak (find "diffIFT") in
      let fn = peak (find "diffIFT-FN") in
      Alcotest.(check bool) (case ^ ": cellift explodes") true (cell > diff);
      Alcotest.(check bool) (case ^ ": fn at or below diffift") true (fn <= diff);
      Alcotest.(check bool) (case ^ ": taints grew at all") true
        (diff > Dvz_soc.Layout.secret_dwords))
    (List.map E.Attacks.to_string E.Attacks.all);
  (* every series saw a transient window *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.E.Fig6.s_case ^ " windowed") true
        (s.E.Fig6.s_window <> None))
    series

let test_table3_shape () =
  let rows = E.Table3.run ~samples:8 ~rng_seed:99 () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  let dv_boom = List.find (fun r -> r.E.Table3.r_core = "BOOM" && r.E.Table3.r_fuzzer = "DejaVuzz") rows in
  (* DejaVuzz: zero overhead on exception windows, nonzero on mispredictions *)
  List.iter
    (fun (kind, cell) ->
      match cell with
      | Some c when Seed.is_exception kind && kind <> Seed.T_illegal ->
          Alcotest.(check (float 0.001)) (Seed.kind_name kind ^ " TO=0") 0.0
            c.E.Table3.c_to
      | Some c when kind = Seed.T_branch ->
          Alcotest.(check bool) "branch needs alignment nops" true
            (c.E.Table3.c_to > 20.0);
          Alcotest.(check bool) "branch ETO small" true (c.E.Table3.c_eto < 10.0)
      | Some _ -> ()
      | None ->
          Alcotest.(check bool)
            (Seed.kind_name kind ^ " only illegal may fail on BOOM")
            true (kind = Seed.T_illegal))
    dv_boom.E.Table3.r_cells;
  (* SpecDoctor: unsupported types are x, supported ones cost ~100+ *)
  let sd = List.find (fun r -> r.E.Table3.r_fuzzer = "SpecDoctor") rows in
  List.iter
    (fun (kind, cell) ->
      match cell with
      | None ->
          Alcotest.(check bool)
            (Seed.kind_name kind ^ " unsupported")
            false
            (Array.exists (( = ) kind) Dvz_baselines.Specdoctor.supported)
      | Some c ->
          Alcotest.(check bool) (Seed.kind_name kind ^ " expensive") true
            (c.E.Table3.c_to > 50.0))
    sd.E.Table3.r_cells;
  (* DejaVuzz* on XiangShan cannot trigger indirect-jump windows *)
  let star_xs =
    List.find
      (fun r -> r.E.Table3.r_core = "XiangShan" && r.E.Table3.r_fuzzer = "DejaVuzz*")
      rows
  in
  Alcotest.(check bool) "tagged BTB defeats random training" true
    (List.assoc Seed.T_jump star_xs.E.Table3.r_cells = None);
  ignore (E.Table3.render rows)

let test_table4_shape () =
  let r = E.Table4.run ~reps:3 boom in
  Alcotest.(check bool) "cellift compile slower than diffift" true
    (r.E.Table4.compile.E.Table4.cellift > r.E.Table4.compile.E.Table4.diffift);
  Alcotest.(check int) "five simulated cases" 5 (List.length r.E.Table4.sims);
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool) (name ^ ": diffift costs more than base") true
        (t.E.Table4.diffift > 0.0 && t.E.Table4.base > 0.0);
      Alcotest.(check bool) (name ^ ": cellift at least as heavy as diffift")
        true
        (t.E.Table4.cellift >= 0.5 *. t.E.Table4.diffift))
    r.E.Table4.sims;
  ignore (E.Table4.render [ r ])

let test_fig7_shape () =
  let r = E.Fig7.run ~iterations:60 ~trials:2 ~rng_seed:5 boom in
  Alcotest.(check int) "three curves" 3 (List.length r.E.Fig7.curves);
  Alcotest.(check bool) "DejaVuzz beats SpecDoctor" true
    (r.E.Fig7.ratio_vs_specdoctor > 1.0);
  Alcotest.(check bool) "coverage guidance helps or matches" true
    (r.E.Fig7.ratio_vs_minus >= 0.85);
  ignore (E.Fig7.render r)

let test_table5_shape () =
  let r = E.Table5.run ~iterations:120 ~rng_seed:7 boom in
  let findings = r.E.Table5.stats.Dejavuzz.Campaign.s_findings in
  Alcotest.(check bool) "bugs found" true (findings <> []);
  Alcotest.(check bool) "first bug early" true
    (match r.E.Table5.stats.Dejavuzz.Campaign.s_first_bug with
    | Some i -> i < 60
    | None -> false);
  ignore (E.Table5.render [ r ])

let test_liveness_shape () =
  let r = E.Liveness_eval.run ~iterations:50 ~rng_seed:9 boom in
  Alcotest.(check bool) "candidates found" true (r.E.Liveness_eval.candidates > 0);
  Alcotest.(check bool) "false positives exist" true
    (r.E.Liveness_eval.false_positives > 0);
  Alcotest.(check int) "partition sums" r.E.Liveness_eval.candidates
    (r.E.Liveness_eval.real_leaks + r.E.Liveness_eval.false_positives);
  Alcotest.(check int) "ablated partition sums" r.E.Liveness_eval.candidates
    (r.E.Liveness_eval.no_liveness_correct + r.E.Liveness_eval.no_liveness_wrong);
  ignore (E.Liveness_eval.render r)

let test_bugcheck_all_detected () =
  List.iter
    (fun bug ->
      let cfg = E.Bugcheck.vulnerable_core bug in
      let v = E.Bugcheck.check cfg bug in
      Alcotest.(check bool) (E.Bugcheck.name bug ^ " detected") true
        v.E.Bugcheck.v_detected;
      Alcotest.(check bool)
        (E.Bugcheck.name bug ^ " attributes "
        ^ E.Bugcheck.expected_component bug)
        true
        (List.mem (E.Bugcheck.expected_component bug)
           v.E.Bugcheck.v_components))
    E.Bugcheck.all

let test_bugcheck_controls_clean () =
  List.iter
    (fun bug ->
      match E.Bugcheck.immune_core bug with
      | None -> ()
      | Some immune ->
          let v = E.Bugcheck.check immune bug in
          Alcotest.(check bool)
            (E.Bugcheck.name bug ^ " control lacks the component")
            false
            (List.mem (E.Bugcheck.expected_component bug)
               v.E.Bugcheck.v_components))
    E.Bugcheck.all

let test_bugcheck_b1_is_meltdown () =
  let v = E.Bugcheck.check (E.Bugcheck.vulnerable_core E.Bugcheck.B1) E.Bugcheck.B1 in
  Alcotest.(check bool) "privilege-crossing" true
    (v.E.Bugcheck.v_attack = Some `Meltdown)

let test_ablation_shape () =
  let r = E.Ablation.run ~iterations:60 ~rng_seed:3 boom in
  Alcotest.(check bool) "cellift population explodes" true
    (r.E.Ablation.cellift_mean_taint > 2.0 *. r.E.Ablation.diffift_mean_taint);
  Alcotest.(check bool) "renders" true
    (String.length (E.Ablation.render r) > 0)

let test_table2_renders () =
  let s = E.Table2.render () in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions both cores" true
    (contains "BOOM" && contains "XiangShan")

let () =
  Alcotest.run "dvz_experiments"
    [ ( "attacks",
        [ Alcotest.test_case "build and trigger" `Quick
            test_attacks_build_everywhere;
          Alcotest.test_case "secret reached" `Quick test_attacks_access_secret;
          Alcotest.test_case "meltdown privileged" `Quick
            test_meltdown_is_privileged ] );
      ( "fig6", [ Alcotest.test_case "shape" `Quick test_fig6_shape ] );
      ( "table3", [ Alcotest.test_case "shape" `Slow test_table3_shape ] );
      ( "table4", [ Alcotest.test_case "shape" `Quick test_table4_shape ] );
      ( "fig7", [ Alcotest.test_case "shape" `Slow test_fig7_shape ] );
      ( "table5", [ Alcotest.test_case "shape" `Slow test_table5_shape ] );
      ( "liveness", [ Alcotest.test_case "shape" `Quick test_liveness_shape ] );
      ( "ablation", [ Alcotest.test_case "shape" `Slow test_ablation_shape ] );
      ( "bugcheck",
        [ Alcotest.test_case "all five detected" `Quick test_bugcheck_all_detected;
          Alcotest.test_case "controls clean" `Quick test_bugcheck_controls_clean;
          Alcotest.test_case "B1 is Meltdown" `Quick test_bugcheck_b1_is_meltdown ] );
      ( "table2", [ Alcotest.test_case "render" `Quick test_table2_renders ] ) ]
