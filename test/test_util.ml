(* Tests for Dvz_util: deterministic PRNG, statistics, table rendering. *)

module Rng = Dvz_util.Rng
module Stats = Dvz_util.Stats
module Tablefmt = Dvz_util.Tablefmt

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 8 (fun _ -> Rng.next a) in
  let ys = List.init 8 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.next a) (Rng.next b);
  ignore (Rng.next a);
  (* advancing one does not advance the other *)
  let a' = Rng.next a and b' = Rng.next b in
  Alcotest.(check bool) "streams drift apart" true (a' <> b')

let test_rng_split () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  let xs = List.init 16 (fun _ -> Rng.next a) in
  let ys = List.init 16 (fun _ -> Rng.next child) in
  Alcotest.(check bool) "child stream is distinct" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_choose () =
  let rng = Rng.create 6 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.choose rng arr in
    Alcotest.(check bool) "element of array" true (Array.exists (( = ) v) arr)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 8 in
  let arr = Array.init 20 (fun i -> i) in
  let orig = Array.copy arr in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" orig sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 10 in
  let l = List.init 10 (fun i -> i) in
  let s = Rng.sample rng l 4 in
  Alcotest.(check int) "sample size" 4 (List.length s);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare s))

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_chance_extremes () =
  let rng = Rng.create 12 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)
  done

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean [])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_ci95 () =
  let m, half = Stats.ci95 [ 10.0; 10.0; 10.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 10.0 m;
  Alcotest.(check (float 1e-9)) "zero width" 0.0 half;
  let _, half2 = Stats.ci95 [ 0.0; 20.0 ] in
  Alcotest.(check bool) "nonzero width" true (half2 > 0.0)

let test_stats_median () =
  Alcotest.(check (float 1e-9)) "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_stats_minmax () =
  let lo, hi = Stats.minmax [ 3.0; -1.0; 7.0 ] in
  Alcotest.(check (float 1e-9)) "min" (-1.0) lo;
  Alcotest.(check (float 1e-9)) "max" 7.0 hi

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 1.0)

let test_table_render () =
  let t = Tablefmt.create [ "a"; "bb" ] in
  Tablefmt.add_row t [ "xxx"; "y" ];
  Tablefmt.add_row t [ "z" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  (* all lines equal width modulo trailing spaces is hard; check row count *)
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "4 lines (header, sep, 2 rows)" 4 (List.length lines)

let test_table_separator () =
  let t = Tablefmt.create [ "h" ] in
  Tablefmt.add_row t [ "1" ];
  Tablefmt.add_sep t;
  Tablefmt.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (String.trim (Tablefmt.render t)) in
  Alcotest.(check int) "5 lines" 5 (List.length lines)

(* Property tests *)

let prop_int_in_range =
  QCheck.Test.make ~name:"rng int_in always within bounds" ~count:500
    QCheck.(triple small_int small_signed_int small_nat)
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let hi = lo + span in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      let lo, hi = Stats.minmax xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let test_parallel_map_order () =
  let xs = List.init 50 (fun i -> i) in
  let ys = Dvz_util.Parallel.map ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs) ys

let test_parallel_map_sequential_fallback () =
  let ys = Dvz_util.Parallel.map ~domains:0 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "sequential" [ 2; 3; 4 ] ys

let test_parallel_available () =
  Alcotest.(check bool) "at least one domain" true
    (Dvz_util.Parallel.available () >= 1)

let test_parallel_worker_index () =
  Alcotest.(check int) "caller is slot 0" 0 (Dvz_util.Parallel.worker_index ());
  let idxs =
    Dvz_util.Parallel.map ~domains:3
      (fun _ -> Dvz_util.Parallel.worker_index ())
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "slots within [0..domains]" true
    (List.for_all (fun i -> i >= 0 && i <= 3) idxs);
  Alcotest.(check int) "slot restored after the map" 0
    (Dvz_util.Parallel.worker_index ())

(* Regression for the worker-count off-by-one: [~domains:N] means N total
   lanes, so no task may ever observe a worker index >= N (the old code
   spawned [min N (n-1)] domains *plus* ran the caller as worker 0, putting
   [--jobs 4] on 5 lanes). *)
let test_parallel_total_lanes () =
  List.iter
    (fun domains ->
      let idxs =
        Dvz_util.Parallel.map ~domains
          (fun _ -> Dvz_util.Parallel.worker_index ())
          (List.init 32 (fun i -> i))
      in
      Alcotest.(check bool)
        (Printf.sprintf "indices < %d total lanes" domains)
        true
        (List.for_all (fun i -> i >= 0 && i < domains) idxs))
    [ 1; 2; 3; 4 ]

let test_parallel_effective_lanes () =
  let avail = Dvz_util.Parallel.available () in
  Alcotest.(check int) "0 clamps up to 1" 1
    (Dvz_util.Parallel.effective_lanes 0);
  Alcotest.(check int) "within hardware is identity" 1
    (Dvz_util.Parallel.effective_lanes 1);
  Alcotest.(check int) "clamped to available" avail
    (Dvz_util.Parallel.effective_lanes (avail + 5));
  Alcotest.(check int) "available itself passes through" avail
    (Dvz_util.Parallel.effective_lanes avail)

exception Transient_glitch

(* map must agree with List.map in order and content for every domain
   count, including when tasks fail transiently and are retried. *)
let prop_parallel_map_equals_list_map =
  QCheck.Test.make ~name:"parallel map equals List.map (with retries)"
    ~count:40
    QCheck.(pair (list_of_size (Gen.int_range 0 12) small_nat) (int_range 0 4))
    (fun (xs, domains) ->
      let n = List.length xs in
      let attempts = Array.init (max 1 n) (fun _ -> Atomic.make 0) in
      let retry =
        Dvz_util.Parallel.retry ~max_attempts:3 ~backoff_s:(fun _ -> 0.0) ()
      in
      let indexed = List.mapi (fun i x -> (i, x)) xs in
      let got =
        Dvz_util.Parallel.map ~domains ~retry
          (fun (i, x) ->
            (* every third task throws once before succeeding *)
            if i mod 3 = 0 && Atomic.fetch_and_add attempts.(i) 1 = 0 then
              raise Transient_glitch;
            (x * x) + i)
          indexed
      in
      got = List.map (fun (i, x) -> (x * x) + i) indexed)

let () =
  Alcotest.run "dvz_util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int rejects <=0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          QCheck_alcotest.to_alcotest prop_int_in_range ] );
      ( "stats",
        [ Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "ci95" `Quick test_stats_ci95;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "minmax" `Quick test_stats_minmax;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          QCheck_alcotest.to_alcotest prop_mean_bounded ] );
      ( "parallel",
        [ Alcotest.test_case "order" `Quick test_parallel_map_order;
          Alcotest.test_case "sequential fallback" `Quick
            test_parallel_map_sequential_fallback;
          Alcotest.test_case "available" `Quick test_parallel_available;
          Alcotest.test_case "worker index" `Quick test_parallel_worker_index;
          Alcotest.test_case "domains means total lanes" `Quick
            test_parallel_total_lanes;
          Alcotest.test_case "effective lanes clamp" `Quick
            test_parallel_effective_lanes;
          QCheck_alcotest.to_alcotest prop_parallel_map_equals_list_map ] );
      ( "tablefmt",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "separator" `Quick test_table_separator ] ) ]
